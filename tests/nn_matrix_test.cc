#include <gtest/gtest.h>

#include <cmath>

#include "nn/matrix.h"

namespace pythia::nn {
namespace {

Matrix Make(size_t rows, size_t cols, std::initializer_list<float> values) {
  Matrix m(rows, cols);
  size_t i = 0;
  for (float v : values) m.data()[i++] = v;
  return m;
}

TEST(MatrixTest, ConstructZeroed) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixTest, AtReadWrite) {
  Matrix m(2, 2);
  m.at(1, 0) = 5.0f;
  EXPECT_EQ(m.at(1, 0), 5.0f);
  EXPECT_EQ(m.row(1)[0], 5.0f);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Make(1, 3, {1, 2, 3});
  Matrix b = Make(1, 3, {10, 20, 30});
  a += b;
  EXPECT_EQ(a.at(0, 1), 22.0f);
  a -= b;
  EXPECT_EQ(a.at(0, 1), 2.0f);
  a *= 2.0f;
  EXPECT_EQ(a.at(0, 2), 6.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(0, 0), 2.0f + 5.0f);
}

TEST(MatrixTest, SquaredNorm) {
  Matrix m = Make(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
}

TEST(MatMulTest, KnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Matrix a = Make(2, 2, {1, 2, 3, 4});
  Matrix b = Make(2, 2, {5, 6, 7, 8});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(MatMulTest, NonSquareShapes) {
  Matrix a(3, 4, 1.0f);
  Matrix b(4, 2, 2.0f);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 8.0f);
}

TEST(MatMulTest, TransposedVariantsAgreeWithExplicit) {
  // Random-ish small matrices; verify a*b^T and a^T*b against MatMul with
  // manual transposes.
  Matrix a = Make(2, 3, {1, -2, 3, 0.5f, 4, -1});
  Matrix b = Make(2, 3, {2, 1, 0, -1, 3, 5});

  Matrix bt(3, 2);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) bt.at(c, r) = b.at(r, c);
  }
  Matrix expect_abt = MatMul(a, bt);
  Matrix got_abt = MatMulBT(a, b);
  for (size_t i = 0; i < expect_abt.size(); ++i) {
    EXPECT_NEAR(got_abt.data()[i], expect_abt.data()[i], 1e-5f);
  }

  Matrix at(3, 2);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  Matrix expect_atb = MatMul(at, b);
  Matrix got_atb = MatMulAT(a, b);
  for (size_t i = 0; i < expect_atb.size(); ++i) {
    EXPECT_NEAR(got_atb.data()[i], expect_atb.data()[i], 1e-5f);
  }
}

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix logits = Make(2, 3, {1, 2, 3, -1, 0, 1});
  Matrix p = SoftmaxRows(logits);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(r, c), 0.0f);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
}

TEST(SoftmaxTest, MonotoneInLogits) {
  Matrix logits = Make(1, 3, {1, 2, 3});
  Matrix p = SoftmaxRows(logits);
  EXPECT_LT(p.at(0, 0), p.at(0, 1));
  EXPECT_LT(p.at(0, 1), p.at(0, 2));
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Matrix logits = Make(1, 2, {1000.0f, 999.0f});
  Matrix p = SoftmaxRows(logits);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0f, 1e-6f);
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(SoftmaxTest, BackwardMatchesFiniteDifference) {
  Matrix logits = Make(1, 4, {0.3f, -0.7f, 1.1f, 0.2f});
  // Loss = sum(w . softmax(x)) for arbitrary w.
  Matrix w = Make(1, 4, {0.5f, -1.0f, 2.0f, 0.25f});

  Matrix y = SoftmaxRows(logits);
  Matrix grad = SoftmaxRowsBackward(y, w);

  const float eps = 1e-3f;
  for (size_t c = 0; c < 4; ++c) {
    Matrix plus = logits, minus = logits;
    plus.at(0, c) += eps;
    minus.at(0, c) -= eps;
    Matrix yp = SoftmaxRows(plus), ym = SoftmaxRows(minus);
    float lp = 0, lm = 0;
    for (size_t k = 0; k < 4; ++k) {
      lp += w.at(0, k) * yp.at(0, k);
      lm += w.at(0, k) * ym.at(0, k);
    }
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad.at(0, c), numeric, 1e-3f);
  }
}

TEST(MatMulTest, ZeroSkipOptimizationIsCorrect) {
  // MatMul skips zero entries of `a`; verify against dense small case.
  Matrix a = Make(2, 3, {0, 2, 0, 1, 0, 3});
  Matrix b = Make(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 6.0f);   // 2*3
  EXPECT_EQ(c.at(0, 1), 8.0f);   // 2*4
  EXPECT_EQ(c.at(1, 0), 16.0f);  // 1*1 + 3*5
  EXPECT_EQ(c.at(1, 1), 20.0f);  // 1*2 + 3*6
}

}  // namespace
}  // namespace pythia::nn
