// Gray-failure resilience: channel health tracking, hedged reads, brownout
// fault injection and the per-channel brownout breakers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/channel_breaker.h"
#include "core/governor.h"
#include "core/prefetcher.h"
#include "core/replay.h"
#include "exec/trace.h"
#include "storage/channel_health.h"
#include "storage/fault_injector.h"
#include "storage/io_scheduler.h"
#include "storage/os_cache.h"

namespace pythia {
namespace {

// --------------------------------------------------------------------------
// ChannelHealthTracker
// --------------------------------------------------------------------------

TEST(ChannelHealthTrackerTest, EwmaTracksServiceTime) {
  ChannelHealthOptions opts;
  opts.ewma_alpha = 0.5;
  ChannelHealthTracker tracker(2, opts);
  tracker.RecordRead(0, 100);
  EXPECT_DOUBLE_EQ(tracker.Ewma(0), 100.0);  // first sample seeds the EWMA
  tracker.RecordRead(0, 300);
  EXPECT_DOUBLE_EQ(tracker.Ewma(0), 200.0);
  EXPECT_EQ(tracker.SampleCount(0), 2u);
  EXPECT_EQ(tracker.SampleCount(1), 0u);
}

TEST(ChannelHealthTrackerTest, WindowP99PublishedWhenWindowFills) {
  ChannelHealthOptions opts;
  opts.window_samples = 8;
  ChannelHealthTracker tracker(2, opts);
  for (int i = 0; i < 7; ++i) tracker.RecordRead(0, 900);
  EXPECT_FALSE(tracker.Warm(0));
  EXPECT_EQ(tracker.CompletedP99Us(0), 0u);
  tracker.RecordRead(0, 900);  // window fills
  EXPECT_TRUE(tracker.Warm(0));
  // All samples land in the log2 bucket [512, 1023]; the interpolated p99
  // lies inside that bucket.
  EXPECT_GE(tracker.CompletedP99Us(0), 512u);
  EXPECT_LE(tracker.CompletedP99Us(0), 1023u);
  EXPECT_FALSE(tracker.Warm(1));
}

TEST(ChannelHealthTrackerTest, SameFeedIsBitIdentical) {
  ChannelHealthOptions opts;
  opts.window_samples = 4;
  ChannelHealthTracker a(3, opts);
  ChannelHealthTracker b(3, opts);
  for (int i = 0; i < 100; ++i) {
    const size_t ch = static_cast<size_t>(i) % 3;
    const SimTime lat = 100 + static_cast<SimTime>((i * 37) % 900);
    a.RecordRead(ch, lat);
    b.RecordRead(ch, lat);
  }
  for (size_t ch = 0; ch < 3; ++ch) {
    EXPECT_DOUBLE_EQ(a.Ewma(ch), b.Ewma(ch));
    EXPECT_EQ(a.CompletedP99Us(ch), b.CompletedP99Us(ch));
    EXPECT_EQ(a.SampleCount(ch), b.SampleCount(ch));
  }
}

TEST(ChannelHealthTrackerTest, ScoreIsSlowdownVsHealthiestWarmChannel) {
  ChannelHealthOptions opts;
  opts.window_samples = 4;
  opts.ewma_alpha = 1.0;  // EWMA == last sample, for exact arithmetic
  ChannelHealthTracker tracker(3, opts);
  EXPECT_DOUBLE_EQ(tracker.Score(0), 1.0);  // nothing warm: no basis
  for (int i = 0; i < 4; ++i) tracker.RecordRead(0, 100);
  for (int i = 0; i < 4; ++i) tracker.RecordRead(1, 900);
  EXPECT_DOUBLE_EQ(tracker.Score(1), 9.0);
  EXPECT_DOUBLE_EQ(tracker.Score(0), 1.0);
}

TEST(ChannelHealthTrackerTest, HedgeDeadlineUsesOtherChannelsNeverOwnTail) {
  ChannelHealthOptions opts;
  opts.window_samples = 4;
  opts.hedging_enabled = true;
  opts.hedge_deadline_mult = 2.0;
  ChannelHealthTracker tracker(2, opts);
  // Only channel 0 is warm: a read on channel 0 has no OTHER warm channel
  // to reference, so it must not hedge.
  for (int i = 0; i < 4; ++i) tracker.RecordRead(0, 900);
  EXPECT_EQ(tracker.HedgeDeadlineUs(0), 0u);
  EXPECT_GT(tracker.HedgeDeadlineUs(1), 0u);
  // Channel 1 goes warm with a 10x-inflated window (a sustained brownout).
  // Channel 1's own deadline still derives from channel 0's healthy p99 —
  // a brownout must not inflate its own deadline and disable hedging.
  for (int i = 0; i < 4; ++i) tracker.RecordRead(1, 9000);
  const SimTime d1 = tracker.HedgeDeadlineUs(1);
  EXPECT_GT(d1, 0u);
  EXPECT_LE(d1, 2 * 1023u);  // 2x channel 0's bucket-interpolated p99
  // And channel 0's deadline now references channel 1's browned tail: much
  // larger, so healthy-channel reads will not spuriously hedge.
  EXPECT_GT(tracker.HedgeDeadlineUs(0), d1);
}

TEST(ChannelHealthTrackerTest, HealthiestOtherPicksLowestEwmaTiesToIndex) {
  ChannelHealthOptions opts;
  opts.window_samples = 2;
  opts.ewma_alpha = 1.0;
  ChannelHealthTracker tracker(4, opts);
  EXPECT_EQ(tracker.HealthiestOther(0), 0u);  // nothing warm: no target
  for (int i = 0; i < 2; ++i) tracker.RecordRead(1, 500);
  for (int i = 0; i < 2; ++i) tracker.RecordRead(2, 100);
  for (int i = 0; i < 2; ++i) tracker.RecordRead(3, 100);
  EXPECT_EQ(tracker.HealthiestOther(0), 2u);  // tie 2 vs 3 -> lowest index
  EXPECT_EQ(tracker.HealthiestOther(2), 3u);  // never itself
}

TEST(ChannelHealthTrackerTest, HedgeBudgetConservationHoldsAtEveryInstant) {
  ChannelHealthOptions opts;
  opts.hedge_budget_fraction = 0.1;
  ChannelHealthTracker tracker(2, opts);
  uint64_t issued = 0;
  for (int i = 0; i < 200; ++i) {
    tracker.RecordRead(i % 2, 900);
    if (tracker.TryAcquireHedge()) {
      ++issued;
      tracker.RecordHedgeOutcome(i % 3 == 0);
    }
    // The invariant the budget exists for, checked at every instant.
    const ChannelHealthCounters c = tracker.counters();
    EXPECT_LE(static_cast<double>(c.hedges_issued),
              opts.hedge_budget_fraction *
                  static_cast<double>(c.reads_observed));
  }
  const ChannelHealthCounters c = tracker.counters();
  EXPECT_EQ(c.hedges_issued, issued);
  EXPECT_EQ(c.hedges_issued, c.hedges_won + c.hedges_wasted);
  EXPECT_GT(c.hedges_denied_budget, 0u);
  // 10% of 200 reads = 20 hedge tokens.
  EXPECT_EQ(issued, 20u);
}

TEST(ChannelHealthTrackerTest, SuppressionDisablesDeadline) {
  ChannelHealthOptions opts;
  opts.window_samples = 2;
  opts.hedging_enabled = true;
  ChannelHealthTracker tracker(2, opts);
  for (int i = 0; i < 2; ++i) tracker.RecordRead(0, 900);
  EXPECT_GT(tracker.HedgeDeadlineUs(1), 0u);
  tracker.set_hedging_suppressed(true);
  EXPECT_EQ(tracker.HedgeDeadlineUs(1), 0u);
  tracker.set_hedging_suppressed(false);
  EXPECT_GT(tracker.HedgeDeadlineUs(1), 0u);
}

TEST(ChannelHealthTrackerTest, ResetRestoresConstructedState) {
  ChannelHealthOptions opts;
  opts.window_samples = 2;
  opts.hedge_budget_fraction = 1.0;
  ChannelHealthTracker tracker(2, opts);
  for (int i = 0; i < 4; ++i) tracker.RecordRead(0, 900);
  ASSERT_TRUE(tracker.TryAcquireHedge());
  tracker.RecordHedgeOutcome(true);
  tracker.set_hedging_suppressed(true);
  tracker.Reset();
  EXPECT_FALSE(tracker.Warm(0));
  EXPECT_EQ(tracker.SampleCount(0), 0u);
  EXPECT_DOUBLE_EQ(tracker.Ewma(0), 0.0);
  EXPECT_FALSE(tracker.hedging_suppressed());
  const ChannelHealthCounters c = tracker.counters();
  EXPECT_EQ(c.reads_observed, 0u);
  EXPECT_EQ(c.hedges_issued, 0u);
  EXPECT_EQ(c.hedges_won, 0u);
}

// --------------------------------------------------------------------------
// FaultInjector: brownout windows and stream isolation
// --------------------------------------------------------------------------

TEST(BrownoutInjectionTest, WindowCoversExactReadOrdinals) {
  FaultConfig config;
  config.brownout_latency_mult = 10.0;
  config.brownout_start_read = 2;
  config.brownout_duration_reads = 3;
  config.seed = 7;
  ASSERT_TRUE(config.brownout_enabled());
  ASSERT_TRUE(config.enabled());
  FaultInjector injector(config);
  std::vector<SimTime> extra;
  for (int i = 0; i < 7; ++i) {
    extra.push_back(injector.OnDiskRead(900).extra_latency_us);
  }
  const SimTime slow = 900 * 9;  // (mult - 1) x base
  EXPECT_EQ(extra, (std::vector<SimTime>{0, 0, slow, slow, slow, 0, 0}));
  EXPECT_EQ(injector.stats().injected_brownout_reads, 3u);
  EXPECT_EQ(injector.stats().injected_brownout_us, 3 * slow);
  EXPECT_EQ(injector.stats().injected_errors, 0u);  // slow, never an error
  EXPECT_EQ(injector.stats().injected_spikes, 0u);
}

TEST(BrownoutInjectionTest, BrownoutDoesNotPerturbErrorOrSpikeStreams) {
  FaultConfig base;
  base.transient_error_prob = 0.2;
  base.tail_latency_prob = 0.2;
  base.seed = 42;
  FaultConfig browned = base;
  browned.brownout_latency_mult = 10.0;
  browned.brownout_start_read = 0;
  browned.brownout_duration_reads = 1000;
  browned.brownout_jitter = 0.5;
  FaultInjector plain(base);
  FaultInjector gray(browned);
  for (int i = 0; i < 500; ++i) {
    const DiskReadFault a = plain.OnDiskRead(900);
    const DiskReadFault b = gray.OnDiskRead(900);
    // Identical error decisions read for read; a browned read's extra
    // latency is >= the plain read's (spike + brownout slowdown on top).
    EXPECT_EQ(a.transient_error, b.transient_error);
    if (!a.transient_error) {
      EXPECT_GE(b.extra_latency_us, a.extra_latency_us);
    }
  }
  EXPECT_EQ(plain.stats().injected_errors, gray.stats().injected_errors);
  EXPECT_EQ(plain.stats().injected_spikes, gray.stats().injected_spikes);
  EXPECT_GT(gray.stats().injected_brownout_reads, 0u);
}

TEST(BrownoutInjectionTest, JitteredBrownoutIsSeedDeterministic) {
  FaultConfig config;
  config.brownout_latency_mult = 10.0;
  config.brownout_duration_reads = 100;
  config.brownout_jitter = 0.3;
  config.seed = 99;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.OnDiskRead(900).extra_latency_us,
              b.OnDiskRead(900).extra_latency_us);
  }
  a.Reset();
  FaultInjector fresh(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.OnDiskRead(900).extra_latency_us,
              fresh.OnDiskRead(900).extra_latency_us);
  }
}

TEST(StallStreamTest, ResetStallStreamReplaysStallsButKeepsStats) {
  FaultConfig config;
  config.aio_stall_prob = 0.5;
  config.aio_stall_us = 1000;
  config.seed = 5;
  FaultInjector injector(config);
  std::vector<SimTime> first;
  for (int i = 0; i < 50; ++i) first.push_back(injector.OnAioSchedule());
  const uint64_t stalls_after_first = injector.stats().injected_stalls;
  ASSERT_GT(stalls_after_first, 0u);
  injector.ResetStallStream();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(injector.OnAioSchedule(), first[i]);
  // Stats are cumulative device history: the rewind does NOT clear them.
  EXPECT_EQ(injector.stats().injected_stalls, 2 * stalls_after_first);
}

TEST(StallStreamTest, StallDrawsDoNotPerturbReadStreams) {
  FaultConfig config;
  config.transient_error_prob = 0.2;
  config.tail_latency_prob = 0.2;
  config.aio_stall_prob = 0.5;
  config.seed = 11;
  FaultInjector plain(config);
  FaultInjector interleaved(config);
  for (int i = 0; i < 300; ++i) {
    const DiskReadFault a = plain.OnDiskRead(900);
    interleaved.OnAioSchedule();  // extra stall draws between reads
    const DiskReadFault b = interleaved.OnDiskRead(900);
    EXPECT_EQ(a.transient_error, b.transient_error);
    EXPECT_EQ(a.extra_latency_us, b.extra_latency_us);
  }
}

// --------------------------------------------------------------------------
// IoScheduler: incremental min tracking, per-channel counters, Reset
// --------------------------------------------------------------------------

TEST(IoSchedulerChannelTest, TieBreaksToLowestIndexLikeTheLinearScan) {
  IoScheduler io(3);
  // All channels free at 0: successive requests at now=0 must take
  // channels 0, 1, 2 in that order (the old scan's choice).
  EXPECT_EQ(io.Schedule(0, 10), 10u);
  EXPECT_EQ(io.Schedule(0, 10), 10u);
  EXPECT_EQ(io.Schedule(0, 10), 10u);
  EXPECT_EQ(io.channel_ops(0), 1u);
  EXPECT_EQ(io.channel_ops(1), 1u);
  EXPECT_EQ(io.channel_ops(2), 1u);
  // Next request queues behind the earliest-free channel (all tie at 10:
  // channel 0 again).
  EXPECT_EQ(io.Schedule(0, 5), 15u);
  EXPECT_EQ(io.channel_ops(0), 2u);
}

TEST(IoSchedulerChannelTest, PerChannelCountersSumToTotals) {
  IoScheduler io(4);
  SimTime busy_expected = 0;
  for (int i = 0; i < 100; ++i) {
    const SimTime lat = 10 + static_cast<SimTime>(i % 7) * 3;
    io.Schedule(static_cast<SimTime>(i), lat);
    busy_expected += lat;
  }
  uint64_t ops = 0;
  SimTime busy = 0;
  for (size_t c = 0; c < io.num_channels(); ++c) {
    ops += io.channel_ops(c);
    busy += io.channel_busy_us(c);
  }
  EXPECT_EQ(ops, io.scheduled_ops());
  EXPECT_EQ(ops, 100u);
  EXPECT_EQ(busy, busy_expected);
}

TEST(IoSchedulerChannelTest, ResetThenReplayIsBitIdenticalToFreshScheduler) {
  FaultConfig config;
  config.aio_stall_prob = 0.4;
  config.aio_stall_us = 500;
  config.seed = 21;

  FaultInjector injector(config);
  IoScheduler io(4);
  io.set_fault_injector(&injector);

  std::vector<SimTime> first;
  for (int i = 0; i < 200; ++i) {
    first.push_back(io.Schedule(static_cast<SimTime>(i * 3), 50));
  }
  // Reset rewinds the channel timelines AND the injector's stall stream:
  // the replayed sequence must be bit-identical — this was the reset
  // contract bug (the old Reset left the stall stream mid-sequence).
  io.Reset();
  EXPECT_EQ(io.scheduled_ops(), 0u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(io.Schedule(static_cast<SimTime>(i * 3), 50), first[i]);
  }
  // And identical to a scheduler + injector built from scratch.
  FaultInjector fresh_injector(config);
  IoScheduler fresh(4);
  fresh.set_fault_injector(&fresh_injector);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(fresh.Schedule(static_cast<SimTime>(i * 3), 50), first[i]);
  }
}

TEST(IoSchedulerChannelTest, HealthTrackerSeesChannelOccupancy) {
  ChannelHealthOptions opts;
  ChannelHealthTracker tracker(2, opts);
  IoScheduler io(2);
  io.set_health_tracker(&tracker);
  io.Schedule(0, 100);
  io.Schedule(0, 300);
  EXPECT_EQ(tracker.SampleCount(0), 1u);
  EXPECT_EQ(tracker.SampleCount(1), 1u);
  EXPECT_DOUBLE_EQ(tracker.Ewma(0), 100.0);
  EXPECT_DOUBLE_EQ(tracker.Ewma(1), 300.0);
}

// --------------------------------------------------------------------------
// OsPageCache: per-channel injector isolation and hedged reads
// --------------------------------------------------------------------------

// Finds an object id owned by `channel` in a cache with this many channels.
ObjectId ObjectOnChannel(const OsPageCache& cache, size_t channel) {
  for (ObjectId obj = 1; obj < 100000; ++obj) {
    if (cache.ChannelOf(PageId{obj, 0}) == channel) return obj;
  }
  ADD_FAILURE() << "no object found for channel " << channel;
  return 0;
}

TEST(StripedCacheFaultIsolationTest, ChannelFaultsNeverPerturbOtherChannels) {
  const LatencyModel latency;
  OsPageCache::Options opts;
  opts.capacity_pages = 64;
  opts.readahead_pages = 0;
  opts.num_channels = 2;

  FaultConfig config;
  config.tail_latency_prob = 0.5;
  config.transient_error_prob = 0.2;
  config.seed = 31;

  const OsPageCache probe(opts, latency);
  const ObjectId obj0 = ObjectOnChannel(probe, 0);
  const ObjectId obj1 = ObjectOnChannel(probe, 1);

  // Arm A: only channel 0 traffic. Arm B: the same channel-0 reads with
  // channel-1 reads interleaved (channel 1 running its own injector).
  // Channel 0's observed fault sequence must be identical: channel streams
  // are isolated, so traffic on one channel can never shift another's.
  auto run = [&](bool interleave) {
    OsPageCache cache(opts, latency);
    FaultInjector inj0(config);
    FaultConfig config1 = config;
    config1.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
    FaultInjector inj1(config1);
    cache.set_channel_fault_injector(0, &inj0);
    cache.set_channel_fault_injector(1, &inj1);
    std::vector<SimTime> lat0;
    for (uint32_t i = 0; i < 200; ++i) {
      const Result<OsReadResult> r = cache.Read(PageId{obj0, i * 2});
      lat0.push_back(r.ok() ? r->latency_us : 0);
      if (interleave) cache.Read(PageId{obj1, i * 2});
    }
    return lat0;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(StripedCacheFaultIsolationTest, ChannelStreamsStableAcrossReset) {
  const LatencyModel latency;
  OsPageCache::Options opts;
  opts.capacity_pages = 64;
  opts.readahead_pages = 0;
  opts.num_channels = 2;
  OsPageCache cache(opts, latency);
  const ObjectId obj1 = ObjectOnChannel(cache, 1);

  FaultConfig config;
  config.tail_latency_prob = 0.6;
  config.seed = 77;
  FaultInjector inj(config);
  cache.set_channel_fault_injector(1, &inj);

  auto sweep = [&] {
    std::vector<SimTime> lats;
    for (uint32_t i = 0; i < 100; ++i) {
      lats.push_back(cache.Read(PageId{obj1, i * 2})->latency_us);
    }
    return lats;
  };
  const std::vector<SimTime> first = sweep();
  cache.DropCaches();
  inj.Reset();  // same seed: the channel's fault stream replays identically
  EXPECT_EQ(sweep(), first);
}

class HedgedReadTest : public ::testing::Test {
 protected:
  HedgedReadTest() {
    cache_opts_.capacity_pages = 256;
    cache_opts_.readahead_pages = 0;
    cache_opts_.num_channels = 4;
    health_opts_.enabled = true;
    health_opts_.window_samples = 8;
    health_opts_.hedging_enabled = true;
    health_opts_.hedge_deadline_mult = 1.5;
    health_opts_.hedge_budget_fraction = 0.25;
  }

  // Builds a cache + tracker where channels other than `victim` are warm at
  // healthy 900us service time.
  void WarmOthers(OsPageCache* cache, ChannelHealthTracker* tracker,
                  size_t victim) {
    cache->set_health_tracker(tracker);
    for (size_t c = 0; c < cache_opts_.num_channels; ++c) {
      if (c == victim) continue;
      for (uint64_t i = 0; i < health_opts_.window_samples; ++i) {
        tracker->RecordRead(c, 900);
      }
    }
  }

  LatencyModel latency_;
  OsPageCache::Options cache_opts_;
  ChannelHealthOptions health_opts_;
};

TEST_F(HedgedReadTest, SlowForegroundReadHedgesAndFirstCompletionWins) {
  OsPageCache cache(cache_opts_, latency_);
  ChannelHealthTracker tracker(cache.num_channels(), health_opts_);
  const size_t victim = 2;
  WarmOthers(&cache, &tracker, victim);
  const ObjectId obj = ObjectOnChannel(cache, victim);

  FaultConfig config;
  config.brownout_latency_mult = 10.0;
  config.brownout_duration_reads = 1u << 30;
  config.seed = 3;
  FaultInjector inj(config);
  cache.set_channel_fault_injector(victim, &inj);

  const Result<OsReadResult> r = cache.Read(PageId{obj, 0});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->hedged);
  EXPECT_TRUE(r->hedge_won);
  EXPECT_EQ(r->primary_latency_us, 9000u);
  EXPECT_NE(r->hedge_channel, victim);
  // First completion wins: deadline + hedge service, well under the browned
  // primary.
  EXPECT_EQ(r->latency_us, r->hedge_deadline_us + r->hedge_latency_us);
  EXPECT_LT(r->latency_us, r->primary_latency_us);
  const ChannelHealthCounters c = tracker.counters();
  EXPECT_EQ(c.hedges_issued, 1u);
  EXPECT_EQ(c.hedges_won, 1u);
  // The detector saw the PRIMARY latency: hedging must not hide the
  // disease.
  EXPECT_DOUBLE_EQ(tracker.Ewma(victim), 9000.0);
}

TEST_F(HedgedReadTest, SpeculativeReadsNeverHedge) {
  OsPageCache cache(cache_opts_, latency_);
  ChannelHealthTracker tracker(cache.num_channels(), health_opts_);
  const size_t victim = 2;
  WarmOthers(&cache, &tracker, victim);
  const ObjectId obj = ObjectOnChannel(cache, victim);

  FaultConfig config;
  config.brownout_latency_mult = 10.0;
  config.brownout_duration_reads = 1u << 30;
  config.seed = 3;
  FaultInjector inj(config);
  cache.set_channel_fault_injector(victim, &inj);

  const Result<OsReadResult> r =
      cache.Read(PageId{obj, 0}, /*hedge_eligible=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->hedged);
  EXPECT_EQ(r->latency_us, 9000u);
  EXPECT_EQ(tracker.counters().hedges_issued, 0u);
}

TEST_F(HedgedReadTest, HealthyReadsDoNotHedge) {
  OsPageCache cache(cache_opts_, latency_);
  ChannelHealthTracker tracker(cache.num_channels(), health_opts_);
  WarmOthers(&cache, &tracker, /*victim=*/2);
  const ObjectId obj = ObjectOnChannel(cache, 0);
  const Result<OsReadResult> r = cache.Read(PageId{obj, 0});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->hedged);
  EXPECT_EQ(r->latency_us, latency_.disk_random_read_us);
}

// --------------------------------------------------------------------------
// ChannelBreakerBoard
// --------------------------------------------------------------------------

class ChannelBreakerTest : public ::testing::Test {
 protected:
  ChannelBreakerTest() : tracker_(MakeTracker()), board_(options_, &tracker_) {}

  static ChannelHealthTracker MakeTracker() {
    ChannelHealthOptions opts;
    opts.window_samples = 4;
    opts.ewma_alpha = 1.0;  // EWMA == last sample: exact state control
    return ChannelHealthTracker(2, opts);
  }

  void Feed(size_t channel, SimTime latency, int n) {
    for (int i = 0; i < n; ++i) tracker_.RecordRead(channel, latency);
  }

  ChannelBreakerOptions options_{.quarantine_score = 4.0,
                                 .close_score = 1.5,
                                 .min_samples = 4,
                                 .probe_budget = 3};
  ChannelHealthTracker tracker_;
  ChannelBreakerBoard board_;
};

TEST_F(ChannelBreakerTest, QuarantinesOnSustainedSlownessNotBeforeWarm) {
  // Channel 0 slow from the start — but nothing is warm yet, so no verdict.
  Feed(0, 9000, 2);
  EXPECT_TRUE(board_.AllowSpeculative(0));
  EXPECT_EQ(board_.state(0), BreakerState::kClosed);
  // Channel 1 warms up healthy; channel 0 reaches min_samples at 10x.
  Feed(1, 900, 4);
  Feed(0, 9000, 2);
  EXPECT_FALSE(board_.AllowSpeculative(0));
  EXPECT_EQ(board_.state(0), BreakerState::kOpen);
  EXPECT_TRUE(board_.AllowSpeculative(1));  // healthy channel unaffected
  EXPECT_EQ(board_.stats().quarantines, 1u);
}

TEST_F(ChannelBreakerTest, RecoversThroughHalfOpenProbes) {
  Feed(1, 900, 4);
  Feed(0, 9000, 4);
  ASSERT_FALSE(board_.AllowSpeculative(0));
  // Still browned: stays open, speculative reads keep being denied.
  Feed(0, 9000, 2);
  EXPECT_FALSE(board_.AllowSpeculative(0));
  EXPECT_GE(board_.stats().speculative_denied, 2u);
  // Recovery: score back to ~1.0 -> half-open, probe_budget=3 probes then
  // closed.
  Feed(0, 900, 4);
  EXPECT_TRUE(board_.AllowSpeculative(0));  // probe 1 (enters half-open)
  EXPECT_EQ(board_.state(0), BreakerState::kHalfOpen);
  EXPECT_TRUE(board_.AllowSpeculative(0));  // probe 2
  EXPECT_TRUE(board_.AllowSpeculative(0));  // probe 3: budget drained
  EXPECT_EQ(board_.state(0), BreakerState::kClosed);
  EXPECT_EQ(board_.stats().reinstatements, 1u);
  EXPECT_EQ(board_.stats().probes, 3u);
}

TEST_F(ChannelBreakerTest, RequarantinesWhenProbePhaseDegrades) {
  Feed(1, 900, 4);
  Feed(0, 9000, 4);
  ASSERT_FALSE(board_.AllowSpeculative(0));
  Feed(0, 900, 4);
  ASSERT_TRUE(board_.AllowSpeculative(0));  // half-open
  // The brownout comes back mid-probe: straight back to quarantine.
  Feed(0, 9000, 2);
  EXPECT_FALSE(board_.AllowSpeculative(0));
  EXPECT_EQ(board_.state(0), BreakerState::kOpen);
  EXPECT_EQ(board_.stats().requarantines, 1u);
}

TEST_F(ChannelBreakerTest, ResetClosesEverythingAndZeroesStats) {
  Feed(1, 900, 4);
  Feed(0, 9000, 4);
  ASSERT_FALSE(board_.AllowSpeculative(0));
  board_.Reset();
  EXPECT_EQ(board_.state(0), BreakerState::kClosed);
  EXPECT_EQ(board_.stats().quarantines, 0u);
  EXPECT_EQ(board_.stats().speculative_denied, 0u);
}

// --------------------------------------------------------------------------
// PrefetchSession brownout shedding
// --------------------------------------------------------------------------

TEST(PrefetchBrownoutShedTest, QuarantinedChannelPagesDropWithoutPinLeak) {
  const LatencyModel latency;
  OsPageCache::Options cache_opts;
  cache_opts.capacity_pages = 256;
  cache_opts.readahead_pages = 0;
  cache_opts.num_channels = 2;
  OsPageCache cache(cache_opts, latency);

  ChannelHealthOptions health_opts;
  health_opts.window_samples = 4;
  health_opts.ewma_alpha = 1.0;
  ChannelHealthTracker tracker(2, health_opts);
  ChannelBreakerOptions breaker_opts;
  breaker_opts.min_samples = 4;
  ChannelBreakerBoard board(breaker_opts, &tracker);
  // Channel 1 browned 10x, channel 0 healthy and warm.
  for (int i = 0; i < 4; ++i) tracker.RecordRead(0, 900);
  for (int i = 0; i < 4; ++i) tracker.RecordRead(1, 9000);

  BufferPool::Options pool_opts;
  pool_opts.capacity_pages = 128;
  BufferPool pool(pool_opts, &cache, latency);
  IoScheduler io(2);

  const ObjectId healthy_obj = ObjectOnChannel(cache, 0);
  const ObjectId browned_obj = ObjectOnChannel(cache, 1);
  std::vector<PageId> pages;
  for (uint32_t i = 0; i < 8; ++i) pages.push_back(PageId{healthy_obj, i * 2});
  for (uint32_t i = 0; i < 8; ++i) pages.push_back(PageId{browned_obj, i * 2});

  PrefetcherOptions opts;
  opts.start_delay_us = 0;
  opts.channel_breakers = &board;
  PrefetchSession session(pages, opts, &pool, &cache, &io, latency);
  session.Pump(1000);
  EXPECT_EQ(session.stats().dropped_brownout, 8u);
  EXPECT_EQ(session.stats().issued, 8u);  // healthy-channel pages went out
  // Dropped pages released their (would-be) pins; issued ones hold theirs.
  EXPECT_EQ(pool.pinned_frames(), 8u);
  session.Finish();
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_EQ(board.stats().speculative_denied, 8u);
}

// --------------------------------------------------------------------------
// Governor hedging suppression
// --------------------------------------------------------------------------

TEST(GovernorHedgingTest, LadderSuppressesAndRestoresHedging) {
  const LatencyModel latency;
  OsPageCache::Options cache_opts;
  cache_opts.num_channels = 2;
  OsPageCache cache(cache_opts, latency);
  ChannelHealthOptions health_opts;
  health_opts.hedging_enabled = true;
  ChannelHealthTracker tracker(2, health_opts);
  cache.set_health_tracker(&tracker);

  BufferPool::Options pool_opts;
  pool_opts.capacity_pages = 4;
  BufferPool pool(pool_opts, &cache, latency);
  IoScheduler io(2);
  GovernorOptions gov_opts;  // suppress_hedging_at = kReadahead (default)
  PrefetchGovernor governor(gov_opts, &pool, &io, &cache);

  // Saturate the pool: every frame pinned -> pressure 1.0 -> kNoPrefetch.
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.FetchPage(PageId{1, i * 2}, 0).ok());
    pool.Pin(PageId{1, i * 2});
  }
  EXPECT_EQ(governor.Evaluate(1000), DegradationRung::kNoPrefetch);
  EXPECT_TRUE(tracker.hedging_suppressed());

  // Pressure released: the ladder steps back one rung per Evaluate; hedging
  // resumes as soon as the rung falls below kReadahead.
  for (uint32_t i = 0; i < 4; ++i) pool.Unpin(PageId{1, i * 2});
  EXPECT_EQ(governor.Evaluate(2000), DegradationRung::kReadahead);
  EXPECT_TRUE(tracker.hedging_suppressed());
  EXPECT_EQ(governor.Evaluate(3000), DegradationRung::kCachedOnly);
  EXPECT_FALSE(tracker.hedging_suppressed());
  governor.Evaluate(4000);
  EXPECT_FALSE(tracker.hedging_suppressed());
}

// --------------------------------------------------------------------------
// End-to-end: SimEnvironment wiring, determinism, hedging under brownout
// --------------------------------------------------------------------------

// A trace of unique random-read pages spread over many objects (stride-3
// page numbers defeat sequential detection, so every access is a cold
// 900us random device read).
QueryTrace RandomTrace(size_t accesses, ObjectId objects) {
  QueryTrace trace;
  for (size_t i = 0; i < accesses; ++i) {
    PageAccess a;
    a.page = PageId{static_cast<ObjectId>(1 + (i % objects)),
                    static_cast<uint32_t>(3 * (i / objects))};
    a.cpu_tuples_before = 1;
    trace.accesses.push_back(a);
  }
  return trace;
}

SimOptions GrayEnvOptions(bool hedging) {
  SimOptions opts;
  opts.buffer_pages = 64;  // far smaller than the trace: every access misses
  opts.os_cache_pages = 64;
  opts.os_readahead_pages = 0;
  opts.storage_channels = 4;
  opts.channel_health.enabled = true;
  opts.channel_health.window_samples = 16;
  opts.channel_health.hedging_enabled = hedging;
  opts.channel_health.hedge_budget_fraction = 0.4;
  opts.faults.brownout_latency_mult = 10.0;
  opts.faults.brownout_start_read = 24;
  opts.faults.brownout_duration_reads = 1u << 30;
  opts.faults.seed = 1234;
  return opts;
}

TEST(GrayFailureEndToEndTest, HedgedReplayIsDeterministicAndFaster) {
  const QueryTrace trace = RandomTrace(1200, 48);
  // Pick the brownout victim: the channel owning the first object.
  SimOptions probe_opts = GrayEnvOptions(true);
  SimEnvironment probe(probe_opts);
  const int victim = static_cast<int>(
      probe.os_cache().ChannelOf(trace.accesses[0].page));

  auto run = [&](bool hedging) {
    SimOptions opts = GrayEnvOptions(hedging);
    opts.brownout_channel = victim;
    SimEnvironment env(opts);
    const ReplayResult r = ReplayQuery(trace, {}, PrefetcherOptions{}, &env);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.completed_accesses, trace.accesses.size());
    return std::make_pair(r.elapsed_us, r.pool_stats);
  };

  const auto hedged_a = run(true);
  const auto hedged_b = run(true);
  // Same seed, hedging on: bit-identical reruns.
  EXPECT_EQ(hedged_a.first, hedged_b.first);
  EXPECT_EQ(hedged_a.second.hedged_reads, hedged_b.second.hedged_reads);
  EXPECT_EQ(hedged_a.second.hedge_wins, hedged_b.second.hedge_wins);
  EXPECT_GT(hedged_a.second.hedged_reads, 0u);
  EXPECT_GT(hedged_a.second.hedge_wins, 0u);

  const auto unhedged = run(false);
  EXPECT_EQ(unhedged.second.hedged_reads, 0u);
  // Hedging routes around the browned channel: strictly faster end to end.
  EXPECT_LT(hedged_a.first, unhedged.first);
}

TEST(GrayFailureEndToEndTest, BrownoutChannelScopingConfinesInjection) {
  const QueryTrace trace = RandomTrace(800, 48);
  SimOptions opts = GrayEnvOptions(false);
  SimEnvironment probe(opts);
  const size_t victim = probe.os_cache().ChannelOf(trace.accesses[0].page);
  opts.brownout_channel = static_cast<int>(victim);
  SimEnvironment env(opts);
  const ReplayResult r = ReplayQuery(trace, {}, PrefetcherOptions{}, &env);
  ASSERT_TRUE(r.status.ok());
  for (size_t c = 0; c < env.os_cache().num_channels(); ++c) {
    const FaultInjector* inj = env.os_cache().channel_fault_injector(c);
    ASSERT_NE(inj, nullptr);
    if (c == victim) {
      EXPECT_GT(inj->stats().injected_brownout_reads, 0u);
    } else {
      EXPECT_EQ(inj->stats().injected_brownout_reads, 0u);
    }
  }
  // And the victim's health score shows the brownout.
  ASSERT_NE(env.channel_health(), nullptr);
  EXPECT_GT(env.channel_health()->Score(victim), 4.0);
}

TEST(GrayFailureEndToEndTest, ResetChannelHealthRestoresColdTracker) {
  SimOptions opts = GrayEnvOptions(true);
  opts.channel_breakers = true;
  SimEnvironment env(opts);
  const QueryTrace trace = RandomTrace(400, 48);
  ASSERT_TRUE(ReplayQuery(trace, {}, PrefetcherOptions{}, &env).status.ok());
  ASSERT_NE(env.channel_health(), nullptr);
  ASSERT_NE(env.channel_breakers(), nullptr);
  EXPECT_GT(env.channel_health()->counters().reads_observed, 0u);
  env.ResetChannelHealth();
  EXPECT_EQ(env.channel_health()->counters().reads_observed, 0u);
  for (size_t c = 0; c < env.os_cache().num_channels(); ++c) {
    EXPECT_FALSE(env.channel_health()->Warm(c));
    EXPECT_EQ(env.channel_breakers()->state(c), BreakerState::kClosed);
  }
}

// TSan soak: a real thread fleet hammering the striped cache with hedging
// and breakers armed, so the tracker's atomics/mutex discipline and the
// breaker board's locking are exercised under genuine concurrency
// (scripts/run_sanitized_tests.sh runs this under -fsanitize=thread).
TEST(GrayFailureEndToEndTest, HedgeSoakParallelFleet) {
  SimOptions opts = GrayEnvOptions(true);
  opts.buffer_pages = 512;
  opts.buffer_shards = 4;
  opts.channel_breakers = true;
  opts.faults.brownout_start_read = 8;
  SimEnvironment env(opts);

  const size_t kThreads = 8;
  std::vector<QueryTrace> traces;
  for (size_t t = 0; t < kThreads; ++t) {
    traces.push_back(RandomTrace(300, 16 + t));
  }
  std::vector<ParallelReplayThread> fleet(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    fleet[t].trace = &traces[t];
    if (t % 2 == 1) {
      // Odd threads also run a speculative session over their own pages, so
      // breaker denials and hedged foreground reads interleave.
      for (const PageAccess& a : traces[t].accesses) {
        fleet[t].prefetch_pages.push_back(a.page);
      }
    }
  }
  ParallelReplayOptions fleet_opts;
  fleet_opts.prefetch.start_delay_us = 0;
  const ParallelReplayResult result =
      ReplayParallelFleet(fleet, fleet_opts, &env);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(result.threads[t].status.ok()) << "thread " << t;
    EXPECT_EQ(result.threads[t].completed_accesses,
              traces[t].accesses.size());
  }
  EXPECT_EQ(env.pool().pinned_frames(), 0u);  // no pin leaks
  // Budget conservation held under concurrency.
  const ChannelHealthCounters c = env.channel_health()->counters();
  EXPECT_LE(static_cast<double>(c.hedges_issued),
            opts.channel_health.hedge_budget_fraction *
                static_cast<double>(c.reads_observed));
  EXPECT_EQ(c.hedges_issued, c.hedges_won + c.hedges_wasted);
}

}  // namespace
}  // namespace pythia
