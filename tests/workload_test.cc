#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "workload/database.h"
#include "workload/generator.h"
#include "workload/templates.h"

namespace pythia {
namespace {

// Small databases keep these tests fast; row counts scale with SF.
DsbConfig SmallDsb() { return DsbConfig{/*scale_factor=*/10, /*seed=*/42}; }
ImdbConfig SmallImdb() { return ImdbConfig{10, 1337}; }

TEST(DatabaseTest, DsbHasAllRelations) {
  auto db = BuildDsbDatabase(SmallDsb());
  for (const char* name :
       {"store_sales", "catalog_returns", "date_dim", "item", "customer",
        "customer_address", "customer_demographics",
        "household_demographics", "store", "call_center"}) {
    EXPECT_NE(db->catalog.GetRelation(name), nullptr) << name;
  }
}

TEST(DatabaseTest, ScaleFactorScalesFactRows) {
  auto small = BuildDsbDatabase(DsbConfig{10, 42});
  auto large = BuildDsbDatabase(DsbConfig{20, 42});
  EXPECT_EQ(large->catalog.GetRelation("store_sales")->num_rows(),
            2 * small->catalog.GetRelation("store_sales")->num_rows());
}

TEST(DatabaseTest, DeterministicGivenSeed) {
  auto a = BuildDsbDatabase(SmallDsb());
  auto b = BuildDsbDatabase(SmallDsb());
  const Relation* ra = a->catalog.GetRelation("store_sales");
  const Relation* rb = b->catalog.GetRelation("store_sales");
  ASSERT_EQ(ra->num_rows(), rb->num_rows());
  for (RowId i = 0; i < 100; ++i) {
    EXPECT_EQ(ra->Get(i, 1), rb->Get(i, 1));
  }
}

TEST(DatabaseTest, ForeignKeysInDomain) {
  auto db = BuildDsbDatabase(SmallDsb());
  const Relation* sales = db->catalog.GetRelation("store_sales");
  const Relation* customer = db->catalog.GetRelation("customer");
  const Relation* item = db->catalog.GetRelation("item");
  const int fk_date = sales->ColumnIndex("ss_sold_date_sk");
  const int fk_item = sales->ColumnIndex("ss_item_sk");
  const int fk_cust = sales->ColumnIndex("ss_customer_sk");
  for (RowId i = 0; i < sales->num_rows(); ++i) {
    EXPECT_GE(sales->Get(i, fk_date), 0);
    EXPECT_LT(sales->Get(i, fk_date), 2190);
    EXPECT_LT(static_cast<size_t>(sales->Get(i, fk_item)), item->num_rows());
    EXPECT_LT(static_cast<size_t>(sales->Get(i, fk_cust)),
              customer->num_rows());
  }
}

TEST(DatabaseTest, FactDatesMostlySorted) {
  // The date correlation the templates rely on: row order ~ date order.
  auto db = BuildDsbDatabase(SmallDsb());
  const Relation* sales = db->catalog.GetRelation("store_sales");
  const auto& dates = sales->Column(0);
  size_t inversions = 0;
  for (size_t i = 1; i < dates.size(); ++i) {
    inversions += dates[i] + 10 < dates[i - 1];
  }
  EXPECT_LT(inversions, dates.size() / 100);
}

TEST(DatabaseTest, DimensionIndexesRegistered) {
  auto db = BuildDsbDatabase(SmallDsb());
  EXPECT_NE(db->indexes.Find("customer", "c_customer_sk"), nullptr);
  EXPECT_NE(db->indexes.Find("item", "i_item_sk"), nullptr);
  EXPECT_NE(db->indexes.Find("customer_address", "ca_address_sk"), nullptr);
}

TEST(DatabaseTest, TotalPagesCoversAllObjects) {
  auto db = BuildDsbDatabase(SmallDsb());
  uint64_t heap = 0;
  for (const char* name : {"store_sales", "customer", "item"}) {
    heap += db->catalog.GetRelation(name)->num_pages();
  }
  EXPECT_GT(db->TotalPages(), heap);  // includes indexes and other relations
}

TEST(DatabaseTest, ImdbHasAllRelations) {
  auto db = BuildImdbDatabase(SmallImdb());
  for (const char* name :
       {"title", "cast_info", "movie_companies", "movie_info", "name",
        "company_name", "role_type", "kind_type", "company_type"}) {
    EXPECT_NE(db->catalog.GetRelation(name), nullptr) << name;
  }
  EXPECT_NE(db->indexes.Find("cast_info", "ci_movie_id"), nullptr);
}

TEST(DatabaseTest, CastInfoMostlyClusteredByMovie) {
  auto db = BuildImdbDatabase(SmallImdb());
  const Relation* ci = db->catalog.GetRelation("cast_info");
  const auto& movies = ci->Column(0);
  size_t out_of_order = 0;
  for (size_t i = 1; i < movies.size(); ++i) {
    out_of_order += movies[i] < movies[i - 1];
  }
  EXPECT_LT(out_of_order, movies.size() / 5);
}

class TemplateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dsb_ = BuildDsbDatabase(SmallDsb());
    imdb_ = BuildImdbDatabase(SmallImdb());
  }
  const Database& DbFor(TemplateId id) {
    return IsDsbTemplate(id) ? *dsb_ : *imdb_;
  }
  std::unique_ptr<Database> dsb_;
  std::unique_ptr<Database> imdb_;
};

TEST_F(TemplateTest, AllTemplatesProduceExecutablePlans) {
  Pcg32 rng(1);
  for (TemplateId id : {TemplateId::kDsb18, TemplateId::kDsb19,
                        TemplateId::kDsb91, TemplateId::kImdb1a}) {
    const Database& db = DbFor(id);
    Executor executor(&db.catalog, &db.indexes);
    for (int i = 0; i < 5; ++i) {
      QueryInstance q = SampleQuery(db, id, &rng);
      ASSERT_NE(q.plan, nullptr);
      TraceRecorder recorder;
      Result<QueryResult> r = executor.Execute(*q.plan, &recorder);
      EXPECT_TRUE(r.ok()) << TemplateName(id) << ": "
                          << r.status().ToString();
    }
  }
}

TEST_F(TemplateTest, SamplingIsDeterministic) {
  Pcg32 a(9), b(9);
  PlanSerializer ser(&dsb_->catalog);
  for (int i = 0; i < 10; ++i) {
    QueryInstance qa = SampleQuery(*dsb_, TemplateId::kDsb18, &a);
    QueryInstance qb = SampleQuery(*dsb_, TemplateId::kDsb18, &b);
    EXPECT_EQ(JoinTokens(ser.Serialize(*qa.plan)),
              JoinTokens(ser.Serialize(*qb.plan)));
  }
}

TEST_F(TemplateTest, TemplatesProducePlanDiversity) {
  Pcg32 rng(5);
  PlanSerializer ser(&dsb_->catalog);
  std::unordered_set<std::string> structures;
  for (int i = 0; i < 60; ++i) {
    QueryInstance q = SampleQuery(*dsb_, TemplateId::kDsb18, &rng);
    structures.insert(ser.StructureKey(*q.plan));
  }
  EXPECT_GT(structures.size(), 2u);
}

TEST_F(TemplateTest, TemplateNames) {
  EXPECT_STREQ(TemplateName(TemplateId::kDsb18), "dsb_t18");
  EXPECT_STREQ(TemplateName(TemplateId::kImdb1a), "imdb_1a");
  EXPECT_TRUE(IsDsbTemplate(TemplateId::kDsb91));
  EXPECT_FALSE(IsDsbTemplate(TemplateId::kImdb1a));
}

TEST_F(TemplateTest, GenerateWorkloadSplitsTrainTest) {
  WorkloadOptions options;
  options.num_queries = 40;
  options.test_fraction = 0.1;
  Result<Workload> wl = GenerateWorkload(*dsb_, TemplateId::kDsb91, options);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->queries.size(), 40u);
  EXPECT_EQ(wl->test_indices.size(), 4u);
  EXPECT_EQ(wl->train_indices.size(), 36u);
  // Disjoint and covering.
  std::unordered_set<size_t> seen(wl->train_indices.begin(),
                                  wl->train_indices.end());
  for (size_t t : wl->test_indices) EXPECT_EQ(seen.count(t), 0u);
  EXPECT_EQ(seen.size() + wl->test_indices.size(), 40u);
}

TEST_F(TemplateTest, WorkloadCollectsTracesAndTokens) {
  WorkloadOptions options;
  options.num_queries = 10;
  Result<Workload> wl = GenerateWorkload(*dsb_, TemplateId::kDsb91, options);
  ASSERT_TRUE(wl.ok());
  for (const WorkloadQuery& q : wl->queries) {
    EXPECT_FALSE(q.trace.accesses.empty());
    EXPECT_FALSE(q.tokens.empty());
    EXPECT_FALSE(q.structure_key.empty());
  }
  EXPECT_GE(wl->DistinctPlans(), 1u);
}

TEST_F(TemplateTest, WorkloadDeterministicGivenSeed) {
  WorkloadOptions options;
  options.num_queries = 8;
  options.seed = 123;
  Result<Workload> a = GenerateWorkload(*dsb_, TemplateId::kDsb18, options);
  Result<Workload> b = GenerateWorkload(*dsb_, TemplateId::kDsb18, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_EQ(a->queries[i].tokens, b->queries[i].tokens);
    EXPECT_EQ(a->queries[i].trace.accesses.size(),
              b->queries[i].trace.accesses.size());
  }
  EXPECT_EQ(a->test_indices, b->test_indices);
}

TEST_F(TemplateTest, Dsb91HasHighNonSeqFraction) {
  // The shape behind Table 1: template 91's non-sequential IO fraction
  // dominates the other templates'.
  WorkloadOptions options;
  options.num_queries = 10;
  auto w18 = GenerateWorkload(*dsb_, TemplateId::kDsb18, options);
  auto w91 = GenerateWorkload(*dsb_, TemplateId::kDsb91, options);
  ASSERT_TRUE(w18.ok());
  ASSERT_TRUE(w91.ok());
  auto frac = [](const Workload& w) {
    double nonseq = 0, seq = 0;
    for (const WorkloadQuery& q : w.queries) {
      nonseq += q.trace.DistinctNonSequential().size();
      seq += q.trace.SequentialCount();
    }
    return nonseq / (seq + nonseq);
  };
  EXPECT_GT(frac(*w91), frac(*w18));
}

// --- Fleet generation (ZipfianPicker, GenerateFleetArrivals) --------------

TEST(ZipfianPickerTest, SamplesInRangeAndDeterministic) {
  ZipfianPicker picker(50, 0.9);
  Pcg32 a(77, 3), b(77, 3);
  for (int i = 0; i < 2000; ++i) {
    const size_t ra = picker.Sample(&a);
    EXPECT_LT(ra, 50u);
    EXPECT_EQ(ra, picker.Sample(&b));  // same seed -> same stream
  }
}

TEST(ZipfianPickerTest, DistributionShapeMatchesZipf) {
  // Empirical rank frequencies must fall off like ~1/(r+1)^theta: rank 0
  // beats rank 1 beats the mid ranks, and the head ratio f(0)/f(1) is close
  // to 2^theta.
  constexpr double kTheta = 0.8;
  constexpr size_t kN = 100;
  constexpr int kSamples = 200000;
  ZipfianPicker picker(kN, kTheta);
  Pcg32 rng(4242, 9);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[picker.Sample(&rng)];

  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[50]);
  const double head_ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  const double want = std::pow(2.0, kTheta);  // ~1.74 at theta 0.8
  EXPECT_NEAR(head_ratio, want, 0.35 * want);
  // The head is genuinely hot: the top 10% of ranks hold ~45% of the mass
  // at theta 0.8 (H_{10,theta}/H_{100,theta}), far above the uniform 10%.
  int head = 0;
  for (size_t r = 0; r < kN / 10; ++r) head += counts[r];
  EXPECT_GT(head, (2 * kSamples) / 5);
}

TEST(ZipfianPickerTest, DegenerateSizesAreSafe) {
  Pcg32 rng(1, 1);
  ZipfianPicker one(1, 0.9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(one.Sample(&rng), 0u);
  ZipfianPicker zero(0, 0.9);  // clamped to n=1 instead of dividing by it
  EXPECT_EQ(zero.n(), 1u);
  EXPECT_EQ(zero.Sample(&rng), 0u);
}

TEST(FleetArrivalsTest, SpecsAreWellFormed) {
  const std::vector<size_t> sizes = {30, 12};
  FleetOptions options;
  options.num_sessions = 500;
  options.num_tenants = 8;
  for (ArrivalProcess arrivals :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    options.arrivals = arrivals;
    std::vector<FleetSessionSpec> fleet =
        GenerateFleetArrivals(sizes, options);
    ASSERT_EQ(fleet.size(), 500u);
    uint64_t prev = 0;
    for (const FleetSessionSpec& s : fleet) {
      EXPECT_GE(s.arrival_us, prev);  // nondecreasing virtual time
      prev = s.arrival_us;
      ASSERT_LT(s.workload_index, sizes.size());
      EXPECT_LT(s.query_index, sizes[s.workload_index]);
      EXPECT_LT(s.tenant, 8u);
      EXPECT_EQ(s.priority, static_cast<int>(s.tenant % 3));
    }
  }
}

TEST(FleetArrivalsTest, DeterministicGivenSeed) {
  const std::vector<size_t> sizes = {30, 12};
  FleetOptions options;
  options.num_sessions = 200;
  std::vector<FleetSessionSpec> a = GenerateFleetArrivals(sizes, options);
  std::vector<FleetSessionSpec> b = GenerateFleetArrivals(sizes, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].workload_index, b[i].workload_index);
    EXPECT_EQ(a[i].query_index, b[i].query_index);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
  }
}

TEST(FleetArrivalsTest, ArrivalProcessDoesNotPerturbSessionMix) {
  // Popularity and timing draw from independent streams, so the Poisson and
  // bursty arms of one seed run the identical session mix — the property
  // bench_fleet's cross-arm comparisons rest on.
  const std::vector<size_t> sizes = {30, 12};
  FleetOptions options;
  options.num_sessions = 300;
  options.arrivals = ArrivalProcess::kPoisson;
  std::vector<FleetSessionSpec> poisson = GenerateFleetArrivals(sizes, options);
  options.arrivals = ArrivalProcess::kBursty;
  std::vector<FleetSessionSpec> bursty = GenerateFleetArrivals(sizes, options);
  ASSERT_EQ(poisson.size(), bursty.size());
  for (size_t i = 0; i < poisson.size(); ++i) {
    EXPECT_EQ(poisson[i].workload_index, bursty[i].workload_index);
    EXPECT_EQ(poisson[i].query_index, bursty[i].query_index);
    EXPECT_EQ(poisson[i].tenant, bursty[i].tenant);
  }
}

TEST(FleetArrivalsTest, BurstyArrivalsFormBursts) {
  const std::vector<size_t> sizes = {10};
  FleetOptions options;
  options.num_sessions = 128;
  options.arrivals = ArrivalProcess::kBursty;
  options.burst_size = 64;
  options.burst_gap_us = 50000;
  options.intra_burst_gap_us = 10;
  std::vector<FleetSessionSpec> fleet = GenerateFleetArrivals(sizes, options);
  ASSERT_EQ(fleet.size(), 128u);
  // Inside a burst sessions are 10us apart; bursts start 50ms apart.
  EXPECT_EQ(fleet[0].arrival_us, 0u);
  EXPECT_EQ(fleet[63].arrival_us, 63u * 10u);
  EXPECT_EQ(fleet[64].arrival_us, 50000u);
  EXPECT_EQ(fleet[127].arrival_us, 50000u + 63u * 10u);
}

}  // namespace
}  // namespace pythia
