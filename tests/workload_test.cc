#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/database.h"
#include "workload/generator.h"
#include "workload/templates.h"

namespace pythia {
namespace {

// Small databases keep these tests fast; row counts scale with SF.
DsbConfig SmallDsb() { return DsbConfig{/*scale_factor=*/10, /*seed=*/42}; }
ImdbConfig SmallImdb() { return ImdbConfig{10, 1337}; }

TEST(DatabaseTest, DsbHasAllRelations) {
  auto db = BuildDsbDatabase(SmallDsb());
  for (const char* name :
       {"store_sales", "catalog_returns", "date_dim", "item", "customer",
        "customer_address", "customer_demographics",
        "household_demographics", "store", "call_center"}) {
    EXPECT_NE(db->catalog.GetRelation(name), nullptr) << name;
  }
}

TEST(DatabaseTest, ScaleFactorScalesFactRows) {
  auto small = BuildDsbDatabase(DsbConfig{10, 42});
  auto large = BuildDsbDatabase(DsbConfig{20, 42});
  EXPECT_EQ(large->catalog.GetRelation("store_sales")->num_rows(),
            2 * small->catalog.GetRelation("store_sales")->num_rows());
}

TEST(DatabaseTest, DeterministicGivenSeed) {
  auto a = BuildDsbDatabase(SmallDsb());
  auto b = BuildDsbDatabase(SmallDsb());
  const Relation* ra = a->catalog.GetRelation("store_sales");
  const Relation* rb = b->catalog.GetRelation("store_sales");
  ASSERT_EQ(ra->num_rows(), rb->num_rows());
  for (RowId i = 0; i < 100; ++i) {
    EXPECT_EQ(ra->Get(i, 1), rb->Get(i, 1));
  }
}

TEST(DatabaseTest, ForeignKeysInDomain) {
  auto db = BuildDsbDatabase(SmallDsb());
  const Relation* sales = db->catalog.GetRelation("store_sales");
  const Relation* customer = db->catalog.GetRelation("customer");
  const Relation* item = db->catalog.GetRelation("item");
  const int fk_date = sales->ColumnIndex("ss_sold_date_sk");
  const int fk_item = sales->ColumnIndex("ss_item_sk");
  const int fk_cust = sales->ColumnIndex("ss_customer_sk");
  for (RowId i = 0; i < sales->num_rows(); ++i) {
    EXPECT_GE(sales->Get(i, fk_date), 0);
    EXPECT_LT(sales->Get(i, fk_date), 2190);
    EXPECT_LT(static_cast<size_t>(sales->Get(i, fk_item)), item->num_rows());
    EXPECT_LT(static_cast<size_t>(sales->Get(i, fk_cust)),
              customer->num_rows());
  }
}

TEST(DatabaseTest, FactDatesMostlySorted) {
  // The date correlation the templates rely on: row order ~ date order.
  auto db = BuildDsbDatabase(SmallDsb());
  const Relation* sales = db->catalog.GetRelation("store_sales");
  const auto& dates = sales->Column(0);
  size_t inversions = 0;
  for (size_t i = 1; i < dates.size(); ++i) {
    inversions += dates[i] + 10 < dates[i - 1];
  }
  EXPECT_LT(inversions, dates.size() / 100);
}

TEST(DatabaseTest, DimensionIndexesRegistered) {
  auto db = BuildDsbDatabase(SmallDsb());
  EXPECT_NE(db->indexes.Find("customer", "c_customer_sk"), nullptr);
  EXPECT_NE(db->indexes.Find("item", "i_item_sk"), nullptr);
  EXPECT_NE(db->indexes.Find("customer_address", "ca_address_sk"), nullptr);
}

TEST(DatabaseTest, TotalPagesCoversAllObjects) {
  auto db = BuildDsbDatabase(SmallDsb());
  uint64_t heap = 0;
  for (const char* name : {"store_sales", "customer", "item"}) {
    heap += db->catalog.GetRelation(name)->num_pages();
  }
  EXPECT_GT(db->TotalPages(), heap);  // includes indexes and other relations
}

TEST(DatabaseTest, ImdbHasAllRelations) {
  auto db = BuildImdbDatabase(SmallImdb());
  for (const char* name :
       {"title", "cast_info", "movie_companies", "movie_info", "name",
        "company_name", "role_type", "kind_type", "company_type"}) {
    EXPECT_NE(db->catalog.GetRelation(name), nullptr) << name;
  }
  EXPECT_NE(db->indexes.Find("cast_info", "ci_movie_id"), nullptr);
}

TEST(DatabaseTest, CastInfoMostlyClusteredByMovie) {
  auto db = BuildImdbDatabase(SmallImdb());
  const Relation* ci = db->catalog.GetRelation("cast_info");
  const auto& movies = ci->Column(0);
  size_t out_of_order = 0;
  for (size_t i = 1; i < movies.size(); ++i) {
    out_of_order += movies[i] < movies[i - 1];
  }
  EXPECT_LT(out_of_order, movies.size() / 5);
}

class TemplateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dsb_ = BuildDsbDatabase(SmallDsb());
    imdb_ = BuildImdbDatabase(SmallImdb());
  }
  const Database& DbFor(TemplateId id) {
    return IsDsbTemplate(id) ? *dsb_ : *imdb_;
  }
  std::unique_ptr<Database> dsb_;
  std::unique_ptr<Database> imdb_;
};

TEST_F(TemplateTest, AllTemplatesProduceExecutablePlans) {
  Pcg32 rng(1);
  for (TemplateId id : {TemplateId::kDsb18, TemplateId::kDsb19,
                        TemplateId::kDsb91, TemplateId::kImdb1a}) {
    const Database& db = DbFor(id);
    Executor executor(&db.catalog, &db.indexes);
    for (int i = 0; i < 5; ++i) {
      QueryInstance q = SampleQuery(db, id, &rng);
      ASSERT_NE(q.plan, nullptr);
      TraceRecorder recorder;
      Result<QueryResult> r = executor.Execute(*q.plan, &recorder);
      EXPECT_TRUE(r.ok()) << TemplateName(id) << ": "
                          << r.status().ToString();
    }
  }
}

TEST_F(TemplateTest, SamplingIsDeterministic) {
  Pcg32 a(9), b(9);
  PlanSerializer ser(&dsb_->catalog);
  for (int i = 0; i < 10; ++i) {
    QueryInstance qa = SampleQuery(*dsb_, TemplateId::kDsb18, &a);
    QueryInstance qb = SampleQuery(*dsb_, TemplateId::kDsb18, &b);
    EXPECT_EQ(JoinTokens(ser.Serialize(*qa.plan)),
              JoinTokens(ser.Serialize(*qb.plan)));
  }
}

TEST_F(TemplateTest, TemplatesProducePlanDiversity) {
  Pcg32 rng(5);
  PlanSerializer ser(&dsb_->catalog);
  std::unordered_set<std::string> structures;
  for (int i = 0; i < 60; ++i) {
    QueryInstance q = SampleQuery(*dsb_, TemplateId::kDsb18, &rng);
    structures.insert(ser.StructureKey(*q.plan));
  }
  EXPECT_GT(structures.size(), 2u);
}

TEST_F(TemplateTest, TemplateNames) {
  EXPECT_STREQ(TemplateName(TemplateId::kDsb18), "dsb_t18");
  EXPECT_STREQ(TemplateName(TemplateId::kImdb1a), "imdb_1a");
  EXPECT_TRUE(IsDsbTemplate(TemplateId::kDsb91));
  EXPECT_FALSE(IsDsbTemplate(TemplateId::kImdb1a));
}

TEST_F(TemplateTest, GenerateWorkloadSplitsTrainTest) {
  WorkloadOptions options;
  options.num_queries = 40;
  options.test_fraction = 0.1;
  Result<Workload> wl = GenerateWorkload(*dsb_, TemplateId::kDsb91, options);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->queries.size(), 40u);
  EXPECT_EQ(wl->test_indices.size(), 4u);
  EXPECT_EQ(wl->train_indices.size(), 36u);
  // Disjoint and covering.
  std::unordered_set<size_t> seen(wl->train_indices.begin(),
                                  wl->train_indices.end());
  for (size_t t : wl->test_indices) EXPECT_EQ(seen.count(t), 0u);
  EXPECT_EQ(seen.size() + wl->test_indices.size(), 40u);
}

TEST_F(TemplateTest, WorkloadCollectsTracesAndTokens) {
  WorkloadOptions options;
  options.num_queries = 10;
  Result<Workload> wl = GenerateWorkload(*dsb_, TemplateId::kDsb91, options);
  ASSERT_TRUE(wl.ok());
  for (const WorkloadQuery& q : wl->queries) {
    EXPECT_FALSE(q.trace.accesses.empty());
    EXPECT_FALSE(q.tokens.empty());
    EXPECT_FALSE(q.structure_key.empty());
  }
  EXPECT_GE(wl->DistinctPlans(), 1u);
}

TEST_F(TemplateTest, WorkloadDeterministicGivenSeed) {
  WorkloadOptions options;
  options.num_queries = 8;
  options.seed = 123;
  Result<Workload> a = GenerateWorkload(*dsb_, TemplateId::kDsb18, options);
  Result<Workload> b = GenerateWorkload(*dsb_, TemplateId::kDsb18, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_EQ(a->queries[i].tokens, b->queries[i].tokens);
    EXPECT_EQ(a->queries[i].trace.accesses.size(),
              b->queries[i].trace.accesses.size());
  }
  EXPECT_EQ(a->test_indices, b->test_indices);
}

TEST_F(TemplateTest, Dsb91HasHighNonSeqFraction) {
  // The shape behind Table 1: template 91's non-sequential IO fraction
  // dominates the other templates'.
  WorkloadOptions options;
  options.num_queries = 10;
  auto w18 = GenerateWorkload(*dsb_, TemplateId::kDsb18, options);
  auto w91 = GenerateWorkload(*dsb_, TemplateId::kDsb91, options);
  ASSERT_TRUE(w18.ok());
  ASSERT_TRUE(w91.ok());
  auto frac = [](const Workload& w) {
    double nonseq = 0, seq = 0;
    for (const WorkloadQuery& q : w.queries) {
      nonseq += q.trace.DistinctNonSequential().size();
      seq += q.trace.SequentialCount();
    }
    return nonseq / (seq + nonseq);
  };
  EXPECT_GT(frac(*w91), frac(*w18));
}

}  // namespace
}  // namespace pythia
