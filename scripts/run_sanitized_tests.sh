#!/usr/bin/env bash
# Builds the tree with -DPYTHIA_SANITIZE=ON (ASan + UBSan, non-recoverable)
# and runs the tier-1 ctest suite under it, so the fault-injection and
# error-propagation paths are exercised sanitized.
#
#   scripts/run_sanitized_tests.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize
cmake -B "${BUILD_DIR}" -S . \
  -DPYTHIA_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"
