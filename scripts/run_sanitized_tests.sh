#!/usr/bin/env bash
# Builds the tree with -DPYTHIA_SANITIZE=ON and runs the tier-1 ctest suite
# under the selected sanitizer.
#
#   scripts/run_sanitized_tests.sh [extra ctest args...]
#
# PYTHIA_SANITIZE selects the sanitizer:
#   (unset) | address   ASan + UBSan, non-recoverable — the fault-injection
#                       and error-propagation paths
#   thread  | tsan      ThreadSanitizer — the ThreadPool-driven parallel
#                       training and inference paths, and
#                       metrics_registry_test's concurrent-increment tests
#                       (the proof that the registry fixed the old
#                       GlobalModelIntegrity counter races)
set -euo pipefail
cd "$(dirname "$0")/.."

case "${PYTHIA_SANITIZE:-address}" in
  thread|tsan)
    MODE=thread
    BUILD_DIR=build-sanitize-thread
    ;;
  address|asan|1|ON|on)
    MODE=address
    BUILD_DIR=build-sanitize
    ;;
  *)
    echo "unknown PYTHIA_SANITIZE mode: ${PYTHIA_SANITIZE}" >&2
    exit 2
    ;;
esac

cmake -B "${BUILD_DIR}" -S . \
  -DPYTHIA_SANITIZE=ON \
  -DPYTHIA_SANITIZE_MODE="${MODE}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"

# The ASan arm additionally sweeps the crash/recovery path: every named
# crash site kills a checkpoint mid-write and recovery parses the torn
# residue — the densest concentration of manual serialization, bounds-checked
# parsing and file juggling in the tree, exactly where ASan/UBSan earn their
# keep.
if [[ "${MODE}" == address ]]; then
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_crash_recovery
  "${BUILD_DIR}/bench/bench_crash_recovery" --smoke
fi

# The TSan arm additionally soaks the background training lane: the
# adaptation smoke bench trains candidates on ThreadPool background tasks
# while the foreground replays queries against the incumbent — the main
# producer/consumer handoff the unit tests only exercise briefly.
if [[ "${MODE}" == thread ]]; then
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_adaptation
  "${BUILD_DIR}/bench/bench_adaptation" --smoke

  # Batch-queue soak: BatchPredictor flush windows fan the decoder GEMMs out
  # on the ThreadPool (WorkloadModel::PredictBatch -> per-unit lanes writing
  # disjoint batch_scratch rows), plus the lane-busy/queue-depth metrics the
  # workers publish while tests drive them. Repeating the suite keeps those
  # lanes hot long enough for TSan to interleave them meaningfully.
  "${BUILD_DIR}/tests/batch_predictor_test" --gtest_repeat=5

  # Sharded-pool soak: real threads hammering the lock-striped BufferPool
  # (ConcurrentFetchesKeepInvariants) and the full multi-threaded fleet
  # replay arm of bench_shard — shard mutexes, striped OS-cache channel
  # locks, the IoScheduler bookkeeping lock and the atomic readahead kill
  # switch all under TSan. Repeats keep the interleavings varied.
  "${BUILD_DIR}/tests/bufmgr_test" \
      --gtest_filter='ShardedPoolTest.*' --gtest_repeat=5
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_shard
  "${BUILD_DIR}/bench/bench_shard" --smoke

  # Hedged-read soak: the gray-failure layer under genuine concurrency — the
  # ChannelHealthTracker's lock-free summary atomics, the global hedge-budget
  # counters and the ChannelBreakerBoard mutex all cross-talk between fleet
  # threads while one channel is browned out. Repeats vary the interleavings;
  # the brownout bench smoke re-checks budget conservation under TSan timing.
  "${BUILD_DIR}/tests/channel_health_test" \
      --gtest_filter='GrayFailureEndToEndTest.HedgeSoakParallelFleet' \
      --gtest_repeat=5
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_brownout
  "${BUILD_DIR}/bench/bench_brownout" --smoke
fi
