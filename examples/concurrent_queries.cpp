// Concurrent-query demo (Section 5.4): runs batches of queries through the
// shared buffer pool with and without Pythia prefetching, at different
// concurrency levels and arrival patterns.
//
//   ./examples/concurrent_queries
#include <cstdio>

#include "core/system.h"
#include "util/metrics.h"
#include "util/table_printer.h"

namespace {

// Per-query statuses: with faults disabled these are always OK, but the
// replay API is fallible and a demo should model the checking, too.
bool AllOk(const pythia::ConcurrentResult& r, const char* label) {
  for (size_t i = 0; i < r.queries.size(); ++i) {
    if (!r.queries[i].status.ok()) {
      std::fprintf(stderr, "%s query %zu failed: %s\n", label, i,
                   r.queries[i].status.ToString().c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace pythia;

  auto db = BuildDsbDatabase(DsbConfig{.scale_factor = 20, .seed = 42});
  WorkloadOptions wopts;
  wopts.num_queries = 150;
  Result<Workload> workload =
      GenerateWorkload(*db, TemplateId::kDsb91, wopts);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  PredictorOptions popts;
  popts.epochs = 12;
  Result<WorkloadModel> model = WorkloadModel::Train(*db, *workload, popts);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  SimOptions sim;
  sim.buffer_pages = 1024;
  SimEnvironment env(sim);
  PythiaSystem system(&env);
  system.AddWorkload(*workload, std::move(*model));

  // Build batches of test queries at several concurrency levels; all
  // queries arrive at t=0 and share the buffer pool.
  TablePrinter table({"concurrent queries", "DFLT total (ms)",
                      "PYTHIA total (ms)", "speedup"});
  PrefetcherOptions prefetch;
  for (size_t level : {2, 4, 6}) {
    std::vector<ConcurrentQuery> plain, fetched;
    for (size_t i = 0; i < level; ++i) {
      const WorkloadQuery& q =
          workload->queries[workload->test_indices[i %
                                                   workload->test_indices
                                                       .size()]];
      ConcurrentQuery c;
      c.trace = &q.trace;
      plain.push_back(c);
      QueryRunMetrics m;
      c.prefetch_pages = system.PrefetchPlan(q, RunMode::kPythia, &m);
      c.prefetch_options = prefetch;
      fetched.push_back(std::move(c));
    }
    env.ColdRestart();
    const ConcurrentResult base = ReplayConcurrent(plain, &env);
    env.ColdRestart();
    const ConcurrentResult pythia = ReplayConcurrent(fetched, &env);
    if (!AllOk(base, "DFLT") || !AllOk(pythia, "PYTHIA")) return 1;
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(level)),
         TablePrinter::Num(base.total_query_us / 1000.0, 1),
         TablePrinter::Num(pythia.total_query_us / 1000.0, 1),
         TablePrinter::Num(
             SafeDiv(static_cast<double>(base.total_query_us),
                     static_cast<double>(pythia.total_query_us)),
             2) +
             "x"});
  }
  table.Print();

  // Staggered arrivals: the same 3 queries arriving 50 ms apart.
  std::printf("\nStaggered arrivals (3 queries, 50 ms apart):\n");
  std::vector<ConcurrentQuery> staggered;
  for (size_t i = 0; i < 3; ++i) {
    const WorkloadQuery& q = workload->queries[workload->test_indices[i]];
    ConcurrentQuery c;
    c.trace = &q.trace;
    c.arrival_us = static_cast<SimTime>(i) * 50000;
    QueryRunMetrics m;
    c.prefetch_pages = system.PrefetchPlan(q, RunMode::kPythia, &m);
    c.prefetch_options = prefetch;
    staggered.push_back(std::move(c));
  }
  env.ColdRestart();
  const ConcurrentResult r = ReplayConcurrent(staggered, &env);
  if (!AllOk(r, "staggered")) return 1;
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  query %zu: start %llu ms, end %llu ms (ran %.1f ms)\n", i,
                static_cast<unsigned long long>(r.start_us[i] / 1000),
                static_cast<unsigned long long>(r.end_us[i] / 1000),
                (r.end_us[i] - r.start_us[i]) / 1000.0);
  }
  std::printf("  makespan: %.1f ms\n", r.makespan_us / 1000.0);
  return 0;
}
