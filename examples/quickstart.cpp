// Quickstart: the complete Pythia pipeline on a small database in ~100
// lines — build data, sample a workload, collect traces, train the
// predictor, and compare default execution against learned prefetching.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/system.h"
#include "util/metrics.h"
#include "util/table_printer.h"

int main() {
  using namespace pythia;

  // 1. Build a DSB-like database (scale factor 20 keeps this example fast).
  std::printf("Building database (SF=20)...\n");
  auto db = BuildDsbDatabase(DsbConfig{.scale_factor = 20, .seed = 42});
  std::printf("  %llu simulated pages across %zu objects\n\n",
              static_cast<unsigned long long>(db->TotalPages()),
              db->catalog.num_objects());

  // 2. Generate a workload: 120 instances of the template-91 analogue,
  //    executed once each to collect page-access traces (95/5 train/test).
  std::printf("Generating workload (dsb_t91, 120 queries)...\n");
  WorkloadOptions wopts;
  wopts.num_queries = 120;
  Result<Workload> workload =
      GenerateWorkload(*db, TemplateId::kDsb91, wopts);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu distinct query plans, %zu train / %zu test queries\n\n",
              workload->DistinctPlans(), workload->train_indices.size(),
              workload->test_indices.size());

  // 3. Train Pythia: one multi-label classifier per non-sequentially
  //    accessed database object.
  std::printf("Training Pythia models...\n");
  PredictorOptions popts;
  popts.epochs = 12;
  Result<WorkloadModel> model = WorkloadModel::Train(*db, *workload, popts);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu models, %zu parameters, %.1f s\n\n",
              model->report().num_models, model->report().total_parameters,
              model->report().train_seconds);

  // 4. Plug the trained models into the simulated buffer manager and run
  //    each unseen test query cold, with and without Pythia.
  SimOptions sim;
  sim.buffer_pages = 768;
  SimEnvironment env(sim);
  PythiaSystem system(&env);
  system.AddWorkload(*workload, std::move(*model));

  TablePrinter table({"query", "F1", "DFLT (ms)", "PYTHIA (ms)", "speedup"});
  PrefetcherOptions prefetch;
  std::vector<double> speedups;
  for (size_t ti : workload->test_indices) {
    const WorkloadQuery& q = workload->queries[ti];
    const QueryRunMetrics dflt =
        system.RunQuery(q, RunMode::kDefault, prefetch);
    const QueryRunMetrics pythia =
        system.RunQuery(q, RunMode::kPythia, prefetch);
    // RunQuery is fallible now that the storage layer can inject faults;
    // without fault injection these are always OK, but check anyway.
    if (!dflt.status.ok() || !pythia.status.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", ti,
                   (dflt.status.ok() ? pythia : dflt)
                       .status.ToString()
                       .c_str());
      return 1;
    }
    const double speedup =
        SafeDiv(static_cast<double>(dflt.elapsed_us),
                static_cast<double>(pythia.elapsed_us));
    speedups.push_back(speedup);
    table.AddRow({"t91#" + std::to_string(ti),
                  TablePrinter::Num(pythia.accuracy.f1, 3),
                  TablePrinter::Num(dflt.elapsed_us / 1000.0, 1),
                  TablePrinter::Num(pythia.elapsed_us / 1000.0, 1),
                  TablePrinter::Num(speedup, 2) + "x"});
  }
  table.Print();
  std::printf("\nMedian speedup from learned prefetching: %.2fx\n",
              Summarize(speedups).median);
  return 0;
}
