// Model persistence: train a workload model once, save it to disk, reload
// it in a "fresh process" and verify the reloaded predictor is bit-identical
// — the deployment flow for periodically retrained Pythia models.
//
//   ./examples/model_persistence [model_path]
#include <cstdio>
#include <string>

#include "core/predictor.h"
#include "core/trace_processor.h"
#include "util/metrics.h"

int main(int argc, char** argv) {
  using namespace pythia;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/pythia_t91_model.pywm";

  auto db = BuildDsbDatabase(DsbConfig{.scale_factor = 10, .seed = 42});
  WorkloadOptions wopts;
  wopts.num_queries = 80;
  Result<Workload> workload =
      GenerateWorkload(*db, TemplateId::kDsb91, wopts);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Training...\n");
  PredictorOptions popts;
  popts.epochs = 10;
  Result<WorkloadModel> model = WorkloadModel::Train(*db, *workload, popts);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu models, %zu parameters\n", model->report().num_models,
              model->report().total_parameters);

  Status save = model->Save(path);
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("Saved to %s\n", path.c_str());

  Result<WorkloadModel> loaded = WorkloadModel::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Reloaded; verifying predictions match...\n");

  size_t checked = 0, mismatches = 0;
  double f1_sum = 0.0;
  for (size_t ti : workload->test_indices) {
    const WorkloadQuery& q = workload->queries[ti];
    const auto a = model->Predict(q.tokens);
    const auto b = loaded->Predict(q.tokens);
    mismatches += a != b;
    ++checked;
    const auto truth = loaded->RestrictToModeled(ProcessTrace(q.trace));
    f1_sum += ComputeSetMetrics(b, truth).f1;
  }
  std::printf("  %zu test queries checked, %zu mismatches, mean F1 %.3f\n",
              checked, mismatches, f1_sum / checked);
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: reloaded model diverges\n");
    return 1;
  }
  std::printf("OK: reloaded model is identical.\n");
  return 0;
}
