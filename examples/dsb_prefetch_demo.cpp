// Deep-dive demo on one DSB query: inspects the plan serialization, the
// collected trace, the prediction, and a side-by-side of all four execution
// modes (DFLT / PYTHIA / ORCL / NN) with buffer-pool statistics.
//
//   ./examples/dsb_prefetch_demo
#include <cstdio>

#include "core/system.h"
#include "exec/serializer.h"
#include "util/metrics.h"
#include "util/table_printer.h"

int main() {
  using namespace pythia;

  auto db = BuildDsbDatabase(DsbConfig{.scale_factor = 20, .seed = 42});
  WorkloadOptions wopts;
  wopts.num_queries = 150;
  Result<Workload> workload =
      GenerateWorkload(*db, TemplateId::kDsb91, wopts);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  PredictorOptions popts;
  popts.epochs = 14;
  Result<WorkloadModel> model = WorkloadModel::Train(*db, *workload, popts);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  SimOptions sim;
  sim.buffer_pages = 1024;
  SimEnvironment env(sim);
  PythiaSystem system(&env);
  system.AddWorkload(*workload, std::move(*model));

  // Pick one unseen query and dissect it.
  const WorkloadQuery& q = workload->queries[workload->test_indices[0]];
  std::printf("=== Serialized query plan (Algorithm 2) ===\n%s\n\n",
              JoinTokens(q.tokens).c_str());

  std::printf("=== Trace summary ===\n");
  std::printf("page requests: %zu  (sequential: %llu, distinct "
              "non-sequential: %zu)\n",
              q.trace.accesses.size(),
              static_cast<unsigned long long>(q.trace.SequentialCount()),
              q.trace.DistinctNonSequential().size());
  std::printf("tuples processed: %llu\n\n",
              static_cast<unsigned long long>(q.trace.tuples_processed));

  std::printf("=== Per-object non-sequential footprint ===\n");
  for (const auto& [object, pages] : ProcessTrace(q.trace)) {
    std::printf("  %-36s %5zu pages (of %u)\n",
                db->catalog.ObjectName(object).c_str(), pages.size(),
                db->catalog.ObjectPages(object));
  }
  std::printf("\n=== Execution modes (cold cache each) ===\n");

  TablePrinter table({"mode", "time (ms)", "speedup", "F1", "buf hits",
                      "prefetch hits", "disk rand", "os copies"});
  PrefetcherOptions prefetch;
  SimTime dflt_time = 0;
  for (RunMode mode : {RunMode::kDefault, RunMode::kPythia, RunMode::kOracle,
                       RunMode::kNearestNeighbor}) {
    const QueryRunMetrics m = system.RunQuery(q, mode, prefetch);
    if (!m.status.ok()) {
      std::fprintf(stderr, "%s run failed: %s\n", RunModeName(mode),
                   m.status.ToString().c_str());
      return 1;
    }
    if (mode == RunMode::kDefault) dflt_time = m.elapsed_us;
    table.AddRow(
        {RunModeName(mode), TablePrinter::Num(m.elapsed_us / 1000.0, 1),
         TablePrinter::Num(SafeDiv(static_cast<double>(dflt_time),
                                   static_cast<double>(m.elapsed_us)),
                           2) +
             "x",
         m.engaged ? TablePrinter::Num(m.accuracy.f1, 3) : "-",
         TablePrinter::Int(static_cast<long long>(m.pool_stats.buffer_hits)),
         TablePrinter::Int(
             static_cast<long long>(m.pool_stats.prefetch_hits)),
         TablePrinter::Int(
             static_cast<long long>(m.pool_stats.disk_random_reads)),
         TablePrinter::Int(
             static_cast<long long>(m.pool_stats.os_cache_copies))});
  }
  table.Print();
  return 0;
}
