// Shared scaffolding for the benchmark binaries: database/workload
// construction with the canonical seeds, model training with a disk cache
// (so the ~20 figure binaries don't retrain the same models), and the
// evaluation loop shared by most figures.
//
// All binaries print deterministic tables: randomness is seeded and timing
// is virtual, so reruns are bit-identical.
#ifndef PYTHIA_BENCH_COMMON_H_
#define PYTHIA_BENCH_COMMON_H_

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "util/metrics.h"
#include "util/table_printer.h"

namespace pythia::bench {

// Canonical experiment scale. The paper uses SF 100 (100 GB) and 1000
// queries per workload; this simulator uses SF 100 of its own page scale
// and 300 queries (~285 train / 15 test after the 5% split).
constexpr int kScaleFactor = 100;
constexpr int kNumQueries = 300;
constexpr int kImdbNumQueries = 200;

inline std::string CacheDir() {
  const char* env = std::getenv("PYTHIA_CACHE_DIR");
  std::string dir = env != nullptr ? env : "pythia_cache";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

inline std::unique_ptr<Database> Dsb(int sf = kScaleFactor) {
  return BuildDsbDatabase(DsbConfig{.scale_factor = sf, .seed = 42});
}

inline std::unique_ptr<Database> Imdb(int sf = kScaleFactor) {
  return BuildImdbDatabase(ImdbConfig{.scale_factor = sf, .seed = 1337});
}

inline Workload MakeWorkload(const Database& db, TemplateId id,
                             int num_queries = kNumQueries) {
  WorkloadOptions options;
  options.num_queries = num_queries;
  Result<Workload> workload = GenerateWorkload(db, id, options);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*workload);
}

inline PredictorOptions DefaultPredictor() {
  return PredictorOptions{};  // paper-shaped defaults, see predictor.h
}

// IMDB experiments model (and prefetch) only cast_info, per Section 5.1.
inline PredictorOptions ImdbPredictor(const Database& db) {
  PredictorOptions options;
  options.restrict_objects = {
      db.catalog.GetRelation("cast_info")->object_id()};
  return options;
}

// Trains or loads the model for `key`; exits on failure (benchmarks have no
// meaningful degraded mode).
inline WorkloadModel CachedModel(const Database& db, const Workload& workload,
                                 const PredictorOptions& options,
                                 const std::string& key) {
  const std::string path = CacheDir() + "/" + key + ".pywm";
  Result<WorkloadModel> model =
      GetOrTrainWorkloadModel(path, db, workload, options);
  if (!model.ok()) {
    std::fprintf(stderr, "model for %s failed: %s\n", key.c_str(),
                 model.status().ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "[model %s] units=%zu params=%zu train=%.1fs\n",
               key.c_str(), model->report().num_models,
               model->report().total_parameters,
               model->report().train_seconds);
  return std::move(*model);
}

inline SimOptions DefaultSim() {
  SimOptions options;
  options.buffer_pages = 1024;  // ~1% of the paper's data:buffer ratio class
  return options;
}

// Per-test-query evaluation record across run modes.
struct QueryEval {
  size_t query_index = 0;
  std::map<RunMode, QueryRunMetrics> metrics;

  double Speedup(RunMode mode) const {
    const SimTime base = metrics.at(RunMode::kDefault).elapsed_us;
    const SimTime t = metrics.at(mode).elapsed_us;
    return SafeDiv(static_cast<double>(base), static_cast<double>(t));
  }
  double F1(RunMode mode) const { return metrics.at(mode).accuracy.f1; }
};

// Aborts the benchmark if a replay hit an unrecoverable read error —
// benchmark tables must never aggregate partially-run queries.
inline void CheckRun(const QueryRunMetrics& m, RunMode mode, size_t ti) {
  if (m.status.ok()) return;
  std::fprintf(stderr, "query %zu (%s) failed: %s\n", ti, RunModeName(mode),
               m.status.ToString().c_str());
  std::exit(1);
}

// Same contract for concurrent batches: every query in the batch must have
// replayed to completion.
inline void CheckConcurrent(const ConcurrentResult& r, const char* label) {
  for (size_t i = 0; i < r.queries.size(); ++i) {
    if (r.queries[i].status.ok()) continue;
    std::fprintf(stderr, "%s query %zu failed: %s\n", label, i,
                 r.queries[i].status.ToString().c_str());
    std::exit(1);
  }
}

// Runs every test query of `workload` cold under each mode.
inline std::vector<QueryEval> EvaluateTestQueries(
    PythiaSystem* system, const Workload& workload,
    const std::vector<RunMode>& modes,
    const PrefetcherOptions& prefetch = PrefetcherOptions{}) {
  std::vector<QueryEval> evals;
  for (size_t ti : workload.test_indices) {
    QueryEval eval;
    eval.query_index = ti;
    eval.metrics[RunMode::kDefault] = system->RunQuery(
        workload.queries[ti], RunMode::kDefault, prefetch);
    CheckRun(eval.metrics[RunMode::kDefault], RunMode::kDefault, ti);
    for (RunMode mode : modes) {
      if (mode == RunMode::kDefault) continue;
      eval.metrics[mode] =
          system->RunQuery(workload.queries[ti], mode, prefetch);
      CheckRun(eval.metrics[mode], mode, ti);
    }
    evals.push_back(std::move(eval));
  }
  return evals;
}

inline std::vector<double> Collect(const std::vector<QueryEval>& evals,
                                   RunMode mode, bool speedup) {
  std::vector<double> out;
  for (const QueryEval& e : evals) {
    out.push_back(speedup ? e.Speedup(mode) : e.F1(mode));
  }
  return out;
}

// "median (p25-p75)" cell for box-plot style figures.
inline std::string BoxCell(const std::vector<double>& values, int digits = 3) {
  const Summary s = Summarize(values);
  return TablePrinter::Num(s.median, digits) + " (" +
         TablePrinter::Num(s.p25, digits) + "-" +
         TablePrinter::Num(s.p75, digits) + ")";
}

// Prediction-only F1 over a workload's test queries (no replay).
inline std::vector<double> PythiaF1(WorkloadModel* model,
                                    const Workload& workload) {
  std::vector<double> f1;
  for (size_t ti : workload.test_indices) {
    const WorkloadQuery& q = workload.queries[ti];
    const auto predicted = model->Predict(q.tokens);
    const auto truth = model->RestrictToModeled(
        ProcessTrace(q.trace, model->options().removal));
    f1.push_back(ComputeSetMetrics(predicted, truth).f1);
  }
  return f1;
}

// Buckets `order_by` into bottom-25% / middle / top-25% and returns the
// bucket index (0/1/2) per element — the quantile bucketing of Figures 7-11.
inline std::vector<int> QuartileBuckets(const std::vector<double>& order_by) {
  std::vector<double> sorted = order_by;
  std::sort(sorted.begin(), sorted.end());
  const double lo = Quantile(sorted, 0.25);
  const double hi = Quantile(sorted, 0.75);
  std::vector<int> buckets;
  for (double v : order_by) buckets.push_back(v <= lo ? 0 : (v >= hi ? 2 : 1));
  return buckets;
}

inline const char* BucketName(int b) {
  return b == 0 ? "low (bottom 25%)" : (b == 1 ? "medium" : "high (top 25%)");
}

}  // namespace pythia::bench

#endif  // PYTHIA_BENCH_COMMON_H_
