// Figure 12d: separate models for index and base table vs one combined
// model per table+index pair. Separate models achieve higher joint accuracy
// (the paper's design choice); the combined model saves storage space.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb18);
  TablePrinter table({"model structure", "PYTHIA F1 med (p25-p75)",
                      "models", "parameters"});

  WorkloadModel separate = CachedModel(*db, workload, DefaultPredictor(),
                                       "dsb_t18_default");
  table.AddRow(
      {"separate (table | index)", BoxCell(PythiaF1(&separate, workload)),
       TablePrinter::Int(static_cast<long long>(
           separate.report().num_models)),
       TablePrinter::Int(
           static_cast<long long>(separate.report().total_parameters))});

  PredictorOptions combined_options = DefaultPredictor();
  combined_options.combined_index_table_model = true;
  WorkloadModel combined = CachedModel(*db, workload, combined_options,
                                       "dsb_t18_combined");
  table.AddRow(
      {"combined (table + index)", BoxCell(PythiaF1(&combined, workload)),
       TablePrinter::Int(static_cast<long long>(
           combined.report().num_models)),
       TablePrinter::Int(
           static_cast<long long>(combined.report().total_parameters))});

  std::printf("=== Figure 12d: separate vs combined index/base-table "
              "models (dsb_t18) ===\n");
  table.Print();
  std::printf("\nPaper shape: the combined model is smaller but less "
              "accurate; prediction accuracy was prioritized, hence "
              "separate models by default.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
