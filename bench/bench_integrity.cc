// Integrity & self-healing sweep (not a paper figure; see DESIGN.md).
//
// Part 1 — corruption sweep: how much of Pythia's speedup over DFLT
// survives as the device silently corrupts reads (bit-flips, torn writes,
// stale reads). Every device read materializes a real page image that is
// verified against its CRC-32/identity/version header; foreground reads
// retry corrupt results, speculative prefetch reads drop them. DFLT and
// PYTHIA see the same corruption sequence per query via ResetFaults(), so
// each speedup is a paired comparison.
//
// Part 2 — drift watchdog: a model trained on one workload is fed queries
// from a drifted variant (same templates, different parameter seed). Its
// useful-prefetch ratio collapses, the per-model watchdog demotes it to the
// sequential-readahead baseline, and when the original workload returns the
// probation probes reinstate it. The timeline of health transitions is the
// output.
#include "bench/common.h"
#include "bench/json_writer.h"

namespace pythia::bench {
namespace {

struct CorruptionPoint {
  double bit_flip;
  double torn_write;
  double stale_read;
};

void CorruptionSweep(const Database& db, const Workload& workload,
                     JsonWriter* json) {
  const std::vector<CorruptionPoint> rates = {
      {0.0, 0.0, 0.0},
      {1e-4, 1e-5, 1e-5},
      {1e-3, 1e-4, 1e-4},
      {1e-2, 1e-3, 1e-3},
      {5e-2, 5e-3, 5e-3}};

  TablePrinter table({"bit flip", "torn", "stale", "PYTHIA speedup",
                      "retained", "crc fails", "stale caught",
                      "fg retries", "pf dropped"});
  double clean_median = 0.0;

  json->Key("corruption_sweep").BeginArray();
  for (const CorruptionPoint& rate : rates) {
    SimOptions sim = DefaultSim();
    sim.faults.bit_flip_prob = rate.bit_flip;
    sim.faults.torn_write_prob = rate.torn_write;
    sim.faults.stale_read_prob = rate.stale_read;
    sim.faults.seed = 20260805;
    // The zero row still verifies checksums on every read, so the sweep
    // baseline includes verification itself (its cost is virtual-time free;
    // this is about behaviour, not CPU).
    sim.verify_page_checksums = true;

    SimEnvironment env(sim);
    PythiaSystem system(&env);
    system.AddWorkload(workload,
                       CachedModel(db, workload, DefaultPredictor(),
                                   "t91_sf50_fault"));

    // Paired *arms*: each arm replays the whole test set against the same
    // injector stream from the same starting point. Resetting per query
    // would rewind the corruption stream every time, replaying the same
    // stream prefix for every query — at rates like 1e-4 the first firing
    // draw usually lies beyond one query's reads, and nothing would ever
    // corrupt.
    env.ResetFaults();
    std::vector<double> dflt_us, pythia_us;
    for (size_t ti : workload.test_indices) {
      const QueryRunMetrics dflt = system.RunQuery(
          workload.queries[ti], RunMode::kDefault, PrefetcherOptions{});
      CheckRun(dflt, RunMode::kDefault, ti);
      dflt_us.push_back(static_cast<double>(dflt.elapsed_us));
    }
    env.ResetFaults();
    std::vector<double> speedups;
    for (size_t i = 0; i < workload.test_indices.size(); ++i) {
      const size_t ti = workload.test_indices[i];
      const QueryRunMetrics pythia = system.RunQuery(
          workload.queries[ti], RunMode::kPythia, PrefetcherOptions{});
      CheckRun(pythia, RunMode::kPythia, ti);
      speedups.push_back(
          SafeDiv(dflt_us[i], static_cast<double>(pythia.elapsed_us)));
    }

    const double median = Summarize(speedups).median;
    if (rate.bit_flip == 0.0) clean_median = median;
    const RobustnessCounters& rc = system.robustness();
    const SimulatedDisk::Stats disk =
        env.disk() != nullptr ? env.disk()->stats() : SimulatedDisk::Stats();
    table.AddRow({TablePrinter::Num(rate.bit_flip, 5),
                  TablePrinter::Num(rate.torn_write, 6),
                  TablePrinter::Num(rate.stale_read, 6),
                  TablePrinter::Num(median, 2) + "x",
                  TablePrinter::Num(SafeDiv(median, clean_median) * 100, 1) +
                      "%",
                  std::to_string(disk.checksum_failures),
                  std::to_string(disk.stale_reads_caught),
                  std::to_string(rc.corrupt_read_retries),
                  std::to_string(rc.corrupt_prefetch_drops)});
    json->BeginObject()
        .Field("bit_flip_rate", rate.bit_flip)
        .Field("torn_write_rate", rate.torn_write)
        .Field("stale_read_rate", rate.stale_read)
        .Field("median_speedup", median)
        .Field("retained", SafeDiv(median, clean_median))
        .Field("device_reads", disk.reads)
        .Field("verified_ok", disk.verified_ok)
        .Field("checksum_failures", disk.checksum_failures)
        .Field("stale_reads_caught", disk.stale_reads_caught)
        .Field("injected_bit_flips", rc.injected_bit_flips)
        .Field("injected_torn_writes", rc.injected_torn_writes)
        .Field("injected_stale_reads", rc.injected_stale_reads)
        .Field("corrupt_read_retries", rc.corrupt_read_retries)
        .Field("corrupt_prefetch_drops", rc.corrupt_prefetch_drops)
        .Field("degraded_queries", rc.degraded_queries)
        .EndObject();
  }
  json->EndArray();

  std::printf("=== Integrity: Pythia speedup vs DFLT under silent "
              "corruption (t91, checksummed pages) ===\n");
  table.Print();
  std::printf("\nExpected shape: every corrupt device read is caught (no "
              "query ever consumes unverified bytes); retained speedup "
              "degrades gracefully as rates climb because foreground "
              "retries cost device time and corrupt prefetches are "
              "dropped.\n\n");
}

const char* PhaseHealth(const PythiaSystem& system) {
  return ModelHealthName(
      const_cast<PythiaSystem&>(system).watchdog(0).health());
}

void DriftWatchdog(const Database& db, const Workload& trained,
                   JsonWriter* json) {
  // Drifted traffic: queries from a *different* template against the same
  // database. A mild re-parameterization of t91 turned out not to be drift
  // at all — the model's useful ratio stays where it was — so the scenario
  // uses the real failure mode: the workload changes shape, the stale
  // model keeps matching (threshold lowered below), and its predictions
  // stop being the pages the queries touch.
  Workload drifted = MakeWorkload(db, TemplateId::kDsb18);

  SimEnvironment env(DefaultSim());
  PythiaSystem system(&env);
  system.AddWorkload(trained, CachedModel(db, trained, DefaultPredictor(),
                                          "t91_sf50_fault"));
  // Drifted plans share the vocabulary but not the structure; lower the
  // match threshold so the (wrong) model keeps engaging — exactly the
  // failure mode the watchdog exists to catch.
  system.set_match_threshold(0.3);
  WatchdogOptions wd;
  wd.window = 4;
  wd.min_samples = 4;
  wd.min_useful_ratio = 0.25;
  wd.min_attempted = 8;
  wd.probation_queries = 4;
  wd.required_probe_successes = 2;
  system.set_watchdog_options(wd);

  TablePrinter table({"phase", "query", "engaged", "degraded", "health",
                      "window ratio"});
  json->Key("drift").BeginObject();
  json->Key("timeline").BeginArray();

  const auto run_phase = [&](const char* phase, const Workload& wl) {
    for (size_t i = 0; i < wl.test_indices.size(); ++i) {
      const size_t ti = wl.test_indices[i];
      const QueryRunMetrics m = system.RunQuery(
          wl.queries[ti], RunMode::kPythia, PrefetcherOptions{});
      CheckRun(m, RunMode::kPythia, ti);
      const char* health = PhaseHealth(system);
      table.AddRow({phase, std::to_string(i),
                    m.engaged ? "yes" : "no",
                    m.degraded_by_watchdog ? "yes" : "no", health,
                    TablePrinter::Num(system.watchdog(0).WindowRatio(), 3)});
      json->BeginObject()
          .Field("phase", phase)
          .Field("query", static_cast<uint64_t>(i))
          .Field("engaged", m.engaged)
          .Field("degraded_by_watchdog", m.degraded_by_watchdog)
          .Field("health", health)
          .Field("window_ratio", system.watchdog(0).WindowRatio())
          .EndObject();
    }
  };

  // Phase 1: the drifted workload arrives — the watchdog should demote.
  run_phase("drift", drifted);
  // Phase 2: the original workload returns — probation probes should
  // reinstate the model.
  run_phase("recover", trained);
  json->EndArray();

  const RobustnessCounters& rc = system.robustness();
  json->Key("stats")
      .BeginObject()
      .Field("demotions", rc.watchdog_demotions)
      .Field("probes", rc.watchdog_probes)
      .Field("reinstatements", rc.watchdog_reinstatements)
      .Field("degraded_queries", rc.watchdog_degraded_queries)
      .Field("final_health", PhaseHealth(system))
      .EndObject()
      .EndObject();

  std::printf("=== Integrity: drift watchdog (t91 model fed a drifted "
              "workload, then the original) ===\n");
  table.Print();
  std::printf("\nwatchdog: demotions=%llu probes=%llu reinstatements=%llu "
              "degraded_queries=%llu final=%s\n",
              static_cast<unsigned long long>(rc.watchdog_demotions),
              static_cast<unsigned long long>(rc.watchdog_probes),
              static_cast<unsigned long long>(rc.watchdog_reinstatements),
              static_cast<unsigned long long>(rc.watchdog_degraded_queries),
              PhaseHealth(system));
  std::printf("\nExpected shape: during drift the window ratio collapses "
              "and the model is demoted (degraded=yes rows run on the "
              "sequential-readahead baseline); once the original workload "
              "returns, probes succeed and the model is reinstated.\n");
}

void Run() {
  auto dsb = Dsb(50);
  Workload workload = MakeWorkload(*dsb, TemplateId::kDsb91);

  JsonWriter json;
  json.BeginObject()
      .Field("bench", "integrity")
      .Field("workload", "t91")
      .Field("scale_factor", 50);

  CorruptionSweep(*dsb, workload, &json);
  DriftWatchdog(*dsb, workload, &json);

  json.EndObject();
  if (!json.WriteToFile("BENCH_integrity.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_integrity.json\n");
  }
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
