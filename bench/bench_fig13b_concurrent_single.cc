// Figure 13b: concurrent queries from a single template, all arriving at
// the same time. Gains grow with concurrency — pages prefetched for one
// query help the others — until resource contention flattens the curve.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb91);
  SimEnvironment env(DefaultSim());
  PythiaSystem system(&env);
  WorkloadModel model = CachedModel(*db, workload, DefaultPredictor(),
                                    "dsb_t91_default");
  system.AddWorkload(workload, std::move(model));

  TablePrinter table({"concurrent queries", "DFLT total (ms)",
                      "PYTHIA total (ms)", "speedup"});
  for (size_t level : {2, 4, 6, 8}) {
    std::vector<ConcurrentQuery> plain, fetched;
    for (size_t i = 0; i < level; ++i) {
      const WorkloadQuery& q =
          workload.queries[workload.test_indices[i %
                                                 workload.test_indices
                                                     .size()]];
      ConcurrentQuery c;
      c.trace = &q.trace;
      plain.push_back(c);
      QueryRunMetrics m;
      c.prefetch_pages = system.PrefetchPlan(q, RunMode::kPythia, &m);
      fetched.push_back(std::move(c));
    }
    env.ColdRestart();
    const ConcurrentResult base = ReplayConcurrent(plain, &env);
    CheckConcurrent(base, "DFLT");
    env.ColdRestart();
    const ConcurrentResult pythia = ReplayConcurrent(fetched, &env);
    CheckConcurrent(pythia, "PYTHIA");
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(level)),
         TablePrinter::Num(base.total_query_us / 1000.0, 1),
         TablePrinter::Num(pythia.total_query_us / 1000.0, 1),
         TablePrinter::Num(static_cast<double>(base.total_query_us) /
                               pythia.total_query_us,
                           2) +
             "x"});
  }

  std::printf("=== Figure 13b: concurrent queries from a single template "
              "(dsb_t91, simultaneous arrival) ===\n");
  table.Print();
  std::printf("\nPaper shape: gains rise with concurrency (prefetches of "
              "one query serve others from the same template), then "
              "plateau as contention grows.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
