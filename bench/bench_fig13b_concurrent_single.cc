// Figure 13b: concurrent queries from a single template, all arriving at
// the same time. Gains grow with concurrency — pages prefetched for one
// query help the others — until resource contention flattens the curve.
#include "bench/common.h"
#include "bench/json_writer.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb91);
  SimEnvironment env(DefaultSim());
  PythiaSystem system(&env);
  WorkloadModel model = CachedModel(*db, workload, DefaultPredictor(),
                                    "dsb_t91_default");
  system.AddWorkload(workload, std::move(model));

  TablePrinter table({"concurrent queries", "DFLT total (ms)",
                      "PYTHIA total (ms)", "speedup"});
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "fig13b_concurrent_single");
  json.Field("template", "dsb_t91");
  json.Key("levels").BeginArray();
  for (size_t level : {2, 4, 6, 8}) {
    std::vector<ConcurrentQuery> plain, fetched;
    for (size_t i = 0; i < level; ++i) {
      const WorkloadQuery& q =
          workload.queries[workload.test_indices[i %
                                                 workload.test_indices
                                                     .size()]];
      ConcurrentQuery c;
      c.trace = &q.trace;
      plain.push_back(c);
      QueryRunMetrics m;
      c.prefetch_pages = system.PrefetchPlan(q, RunMode::kPythia, &m);
      fetched.push_back(std::move(c));
    }
    env.ColdRestart();
    const ConcurrentResult base = ReplayConcurrent(plain, &env);
    CheckConcurrent(base, "DFLT");
    env.ColdRestart();
    const ConcurrentResult pythia = ReplayConcurrent(fetched, &env);
    CheckConcurrent(pythia, "PYTHIA");
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(level)),
         TablePrinter::Num(base.total_query_us / 1000.0, 1),
         TablePrinter::Num(pythia.total_query_us / 1000.0, 1),
         TablePrinter::Num(static_cast<double>(base.total_query_us) /
                               pythia.total_query_us,
                           2) +
             "x"});
    json.BeginObject();
    json.Field("concurrency", static_cast<uint64_t>(level));
    json.Field("dflt_total_us", static_cast<uint64_t>(base.total_query_us));
    json.Field("pythia_total_us",
               static_cast<uint64_t>(pythia.total_query_us));
    json.Field("dflt_makespan_us", static_cast<uint64_t>(base.makespan_us));
    json.Field("pythia_makespan_us",
               static_cast<uint64_t>(pythia.makespan_us));
    json.Field("speedup", static_cast<double>(base.total_query_us) /
                              pythia.total_query_us);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::printf("=== Figure 13b: concurrent queries from a single template "
              "(dsb_t91, simultaneous arrival) ===\n");
  table.Print();
  std::printf("\nPaper shape: gains rise with concurrency (prefetches of "
              "one query serve others from the same template), then "
              "plateau as contention grows.\n");
  if (json.WriteToFile("BENCH_fig13b.json")) {
    std::printf("wrote BENCH_fig13b.json\n");
  } else {
    std::fprintf(stderr, "warning: could not write BENCH_fig13b.json\n");
  }
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
