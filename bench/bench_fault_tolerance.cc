// Robustness sweep: how much of Pythia's speedup over DFLT survives as the
// storage layer degrades. Each row injects a transient-read-error rate (plus
// a fixed 0.1% tail-latency-spike rate for the faulty rows) into every disk
// read. Foreground reads retry with capped exponential backoff; speculative
// prefetch reads are simply dropped; the circuit breaker may degrade
// prefetch-eligible queries when sessions turn unhealthy.
//
// DFLT and PYTHIA see the *same* fault sequence per query via
// SimEnvironment::ResetFaults(), so each speedup is a paired comparison.
#include "bench/common.h"
#include "bench/json_writer.h"

namespace pythia::bench {
namespace {

struct RatePoint {
  double error_prob;
  double spike_prob;
};

void Run() {
  // t91 is the workload where prefetching matters most (highest
  // non-sequential IO fraction), so it is the sharpest probe of how much
  // benefit survives fault injection. Scale 50 keeps the sweep quick.
  auto dsb = Dsb(50);
  Workload workload = MakeWorkload(*dsb, TemplateId::kDsb91);
  WorkloadModel model =
      CachedModel(*dsb, workload, DefaultPredictor(), "t91_sf50_fault");

  const std::vector<RatePoint> rates = {
      {0.0, 0.0}, {0.005, 0.001}, {0.01, 0.001}, {0.02, 0.001},
      {0.05, 0.001}};

  TablePrinter table({"error rate", "spike rate", "PYTHIA speedup",
                      "retained", "retries", "inj err", "dropped pf",
                      "degraded"});
  double fault_free_median = 0.0;

  JsonWriter json;
  json.BeginObject()
      .Field("bench", "fault_tolerance")
      .Field("workload", "t91")
      .Field("scale_factor", 50)
      .Key("rows")
      .BeginArray();

  for (const RatePoint& rate : rates) {
    SimOptions sim = DefaultSim();
    sim.faults.transient_error_prob = rate.error_prob;
    sim.faults.tail_latency_prob = rate.spike_prob;
    sim.faults.seed = 20260805;

    SimEnvironment env(sim);
    PythiaSystem system(&env);
    system.AddWorkload(workload,
                       CachedModel(*dsb, workload, DefaultPredictor(),
                                   "t91_sf50_fault"));

    // ResetFaults() also clears the injector's counters, so the totals for
    // the table are accumulated per arm rather than read at the end.
    uint64_t injected_errors = 0;
    const auto harvest = [&] {
      if (env.fault_injector() != nullptr) {
        injected_errors += env.fault_injector()->stats().injected_errors;
      }
    };

    std::vector<double> speedups;
    for (size_t ti : workload.test_indices) {
      // Paired arms: both modes replay against an identical fault sequence.
      env.ResetFaults();
      const QueryRunMetrics dflt = system.RunQuery(
          workload.queries[ti], RunMode::kDefault, PrefetcherOptions{});
      CheckRun(dflt, RunMode::kDefault, ti);
      harvest();
      env.ResetFaults();
      const QueryRunMetrics pythia = system.RunQuery(
          workload.queries[ti], RunMode::kPythia, PrefetcherOptions{});
      CheckRun(pythia, RunMode::kPythia, ti);
      harvest();
      speedups.push_back(
          SafeDiv(static_cast<double>(dflt.elapsed_us),
                  static_cast<double>(pythia.elapsed_us)));
    }

    const double median = Summarize(speedups).median;
    if (rate.error_prob == 0.0 && rate.spike_prob == 0.0) {
      fault_free_median = median;
    }
    const RobustnessCounters& rc = system.robustness();
    table.AddRow({TablePrinter::Num(rate.error_prob * 100, 2) + "%",
                  TablePrinter::Num(rate.spike_prob * 100, 2) + "%",
                  TablePrinter::Num(median, 2) + "x",
                  TablePrinter::Num(
                      SafeDiv(median, fault_free_median) * 100, 1) +
                      "%",
                  std::to_string(rc.read_retries),
                  std::to_string(injected_errors),
                  std::to_string(rc.dropped_prefetches),
                  std::to_string(rc.degraded_queries)});
    json.BeginObject()
        .Field("error_rate", rate.error_prob)
        .Field("spike_rate", rate.spike_prob)
        .Field("median_speedup", median)
        .Field("retained", SafeDiv(median, fault_free_median))
        .Field("read_retries", rc.read_retries)
        .Field("injected_errors", injected_errors)
        .Field("dropped_prefetches", rc.dropped_prefetches)
        .Field("degraded_queries", rc.degraded_queries)
        .Field("breaker_trips", rc.breaker_trips)
        .EndObject();
  }
  json.EndArray().EndObject();
  if (!json.WriteToFile("BENCH_fault_tolerance.json")) {
    std::fprintf(stderr, "warning: could not write "
                 "BENCH_fault_tolerance.json\n");
  }

  std::printf("=== Fault tolerance: Pythia speedup vs DFLT under injected "
              "storage faults (t91) ===\n");
  table.Print();
  std::printf("\nExpected shape: retained speedup stays >=75%% at 1%% "
              "transient errors + 0.1%% spikes; at extreme rates the "
              "breaker may degrade queries to DFLT (retained -> 100%% of "
              "nothing rather than a regression).\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
