// Shard-contention micro-bench: real threads hammering the buffer pool.
//
// PR 7's fleet engine interleaves sessions in virtual time, so it never
// showed whether the storage stack itself scales. This bench does: T OS
// threads replay Zipf-skewed page traces against one shared SimEnvironment,
// swept over buffer-pool shard counts (storage channels striped to match),
// with wall-clock lock profiling on. The unsharded arm (shards=1) is the
// old single-mutex pool; its contended-acquisition rate and lock wait time
// are the direct evidence that one mutex was the fleet bottleneck, and the
// sharded arms show striping removing it.
//
// Self-checking, exit 1 on violation:
//  - completeness: every arm completes every access of every thread, with
//    zero leaked pins, regardless of interleaving;
//  - single-thread parity: with capacity for every distinct page (no
//    evictions), a single-threaded replay against a sharded pool is
//    field-for-field identical to the unsharded pool — sharding must not
//    change what the simulation computes, only who holds which lock;
//  - determinism: the single-threaded sharded replay reruns bit-identical;
//  - scaling (full mode only, and only when the unsharded arm actually
//    contended): the best sharded arm must beat the unsharded arm's
//    throughput. Wall-clock thresholds are deliberately lenient — CI
//    runners share cores — and the raw numbers land in the JSON for the
//    honest read.
//
// Results land in BENCH_shard.json. `--smoke` shrinks the sweep for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/replay.h"
#include "util/rng.h"
#include "util/table_printer.h"

#include "bench/json_writer.h"

namespace pythia {
namespace {

struct ShardConfig {
  size_t num_threads = 8;
  size_t accesses_per_thread = 60000;
  size_t reps = 3;               // best-of-N wall clock per arm
  std::vector<size_t> shard_counts = {1, 2, 4, 8};
  uint32_t page_space = 1 << 18; // distinct page universe per thread domain
  uint32_t num_objects = 16;
  double zipf_s = 0.9;
  uint64_t seed = 20260808;
};

// Per-thread Zipf trace. Threads share one hot page universe (that is what
// makes the single mutex hot: skew concentrates every thread on the same
// shard-0 page table), spread across objects so storage channels stripe too.
std::vector<QueryTrace> MakeTraces(const ShardConfig& cfg) {
  std::vector<QueryTrace> traces(cfg.num_threads);
  const ZipfSampler zipf(cfg.page_space, cfg.zipf_s);
  for (size_t t = 0; t < cfg.num_threads; ++t) {
    Pcg32 rng(cfg.seed, 0x5a4d0000ULL + t);
    QueryTrace& trace = traces[t];
    trace.accesses.reserve(cfg.accesses_per_thread);
    for (size_t a = 0; a < cfg.accesses_per_thread; ++a) {
      const uint32_t v = zipf.Sample(&rng);
      PageAccess access;
      access.page = PageId{1 + v % cfg.num_objects, v / cfg.num_objects};
      access.sequential = false;
      access.cpu_tuples_before = 1;  // keep the lock, not the "CPU", hot
      trace.accesses.push_back(access);
    }
  }
  return traces;
}

SimOptions ArmSim(size_t shards, size_t capacity) {
  SimOptions sim;
  sim.buffer_pages = capacity;
  sim.os_cache_pages = 4 * capacity;
  sim.buffer_shards = shards;
  sim.storage_channels = shards;
  sim.profile_pool_locks = true;
  return sim;
}

struct ArmResult {
  size_t shards = 0;
  double best_wall_ms = 0.0;
  uint64_t fetches = 0;
  BufferPoolLockStats lock;  // from the best rep
  double throughput_mfps() const {
    return best_wall_ms > 0.0
               ? static_cast<double>(fetches) / best_wall_ms / 1000.0
               : 0.0;
  }
  double contended_rate() const {
    return lock.acquisitions > 0
               ? static_cast<double>(lock.contended) /
                     static_cast<double>(lock.acquisitions)
               : 0.0;
  }
  double avg_wait_ns() const {
    return lock.contended > 0 ? static_cast<double>(lock.wait_ns) /
                                    static_cast<double>(lock.contended)
                              : 0.0;
  }
  double avg_hold_ns() const {
    return lock.hold_samples > 0 ? static_cast<double>(lock.hold_ns) /
                                       static_cast<double>(lock.hold_samples)
                                 : 0.0;
  }
};

ArmResult RunArm(const ShardConfig& cfg, size_t shards,
                 const std::vector<QueryTrace>& traces) {
  ArmResult arm;
  arm.shards = shards;
  std::vector<ParallelReplayThread> threads(cfg.num_threads);
  for (size_t t = 0; t < cfg.num_threads; ++t) {
    threads[t].trace = &traces[t];
  }
  const uint64_t expected =
      static_cast<uint64_t>(cfg.num_threads) * cfg.accesses_per_thread;
  for (size_t rep = 0; rep < cfg.reps; ++rep) {
    // Fresh environment per rep: every rep starts cold, so reps are
    // comparable and the best-of-N is a best over identical workloads.
    SimEnvironment env(ArmSim(shards, /*capacity=*/cfg.page_space / 16));
    ParallelReplayResult r =
        ReplayParallelFleet(threads, ParallelReplayOptions{}, &env);
    uint64_t completed = 0;
    for (const ParallelThreadResult& tr : r.threads) {
      if (!tr.status.ok()) {
        std::fprintf(stderr, "FAIL: thread error (shards=%zu): %s\n", shards,
                     tr.status.ToString().c_str());
        std::exit(1);
      }
      completed += tr.completed_accesses;
    }
    if (completed != expected || r.pool_stats.fetches != expected) {
      std::fprintf(stderr,
                   "FAIL: lost accesses (shards=%zu): completed=%llu "
                   "fetches=%llu expected=%llu\n",
                   shards, static_cast<unsigned long long>(completed),
                   static_cast<unsigned long long>(r.pool_stats.fetches),
                   static_cast<unsigned long long>(expected));
      std::exit(1);
    }
    if (env.pool().pinned_frames() != 0) {
      std::fprintf(stderr, "FAIL: leaked pins (shards=%zu)\n", shards);
      std::exit(1);
    }
    if (rep == 0 || r.wall_ms < arm.best_wall_ms) {
      arm.best_wall_ms = r.wall_ms;
      arm.fetches = r.pool_stats.fetches;
      arm.lock = r.lock_stats;
    }
  }
  return arm;
}

// Field-for-field pool-stats equality (parity + determinism checks).
bool SameStats(const BufferPoolStats& a, const BufferPoolStats& b) {
  return a.fetches == b.fetches && a.buffer_hits == b.buffer_hits &&
         a.prefetch_hits == b.prefetch_hits &&
         a.prefetch_wait_hits == b.prefetch_wait_hits &&
         a.os_cache_copies == b.os_cache_copies &&
         a.disk_seq_reads == b.disk_seq_reads &&
         a.disk_random_reads == b.disk_random_reads &&
         a.evictions == b.evictions && a.uncached_reads == b.uncached_reads &&
         a.prefetches_started == b.prefetches_started &&
         a.prefetches_rejected == b.prefetches_rejected &&
         a.prefetch_wait_us == b.prefetch_wait_us &&
         a.read_retries == b.read_retries &&
         a.corrupt_retries == b.corrupt_retries &&
         a.failed_fetches == b.failed_fetches;
}

// Single-threaded replay of thread 0's trace with capacity for every
// distinct page (no evictions, so shard-local replacement cannot diverge).
ReplayResult SoloRun(const ShardConfig& cfg, size_t shards,
                     const QueryTrace& trace) {
  SimEnvironment env(ArmSim(shards, /*capacity=*/cfg.page_space));
  return ReplayQuery(trace, {}, PrefetcherOptions{}, &env);
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) {
  using namespace pythia;
  using bench::JsonWriter;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  ShardConfig cfg;
  if (smoke) {
    cfg.num_threads = 4;
    cfg.accesses_per_thread = 15000;
    cfg.reps = 2;
    cfg.shard_counts = {1, 4};
  }
  // Deliberately NOT capped at hardware_concurrency: on a small runner the
  // threads time-slice, which still exercises the multi-threaded path and
  // still measures contention — only the wall-clock scaling gate below
  // needs real cores.
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("shard contention bench: %zu threads x %zu accesses (%u "
              "cores), Zipf s=%.2f over %u pages%s\n",
              cfg.num_threads, cfg.accesses_per_thread, hw, cfg.zipf_s,
              cfg.page_space, smoke ? " [smoke]" : "");
  const std::vector<QueryTrace> traces = MakeTraces(cfg);

  std::vector<ArmResult> arms;
  for (size_t shards : cfg.shard_counts) {
    arms.push_back(RunArm(cfg, shards, traces));
  }

  // Parity: sharded single-thread run vs the unsharded pool, no evictions.
  const ReplayResult solo1 = SoloRun(cfg, 1, traces[0]);
  const ReplayResult solo4 = SoloRun(cfg, 4, traces[0]);
  const ReplayResult solo4b = SoloRun(cfg, 4, traces[0]);
  const bool parity = solo1.status.ok() && solo4.status.ok() &&
                      solo1.elapsed_us == solo4.elapsed_us &&
                      SameStats(solo1.pool_stats, solo4.pool_stats);
  const bool deterministic = solo4.elapsed_us == solo4b.elapsed_us &&
                             SameStats(solo4.pool_stats, solo4b.pool_stats);
  if (!parity) {
    std::fprintf(stderr, "FAIL: sharded solo run diverged from unsharded\n");
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: sharded solo rerun not bit-identical\n");
    return 1;
  }

  TablePrinter table({"shards", "wall_ms", "Mfetch/s", "speedup",
                      "contended%", "avg_wait_ns", "avg_hold_ns"});
  const double base = arms[0].throughput_mfps();
  for (const ArmResult& arm : arms) {
    table.AddRow({std::to_string(arm.shards),
                  TablePrinter::Num(arm.best_wall_ms, 1),
                  TablePrinter::Num(arm.throughput_mfps(), 2),
                  TablePrinter::Num(arm.throughput_mfps() / base, 2),
                  TablePrinter::Num(100.0 * arm.contended_rate(), 2),
                  TablePrinter::Num(arm.avg_wait_ns(), 0),
                  TablePrinter::Num(arm.avg_hold_ns(), 0)});
  }
  table.Print();

  double best_thr = 0.0;
  for (const ArmResult& arm : arms) {
    best_thr = std::max(best_thr, arm.throughput_mfps());
  }
  // Scaling gate: only meaningful on a machine with real parallelism AND
  // when the single mutex actually contended (on one core, striping cannot
  // buy wall time — threads just time-slice), and lenient because
  // wall-clock on shared runners is noisy. The JSON has the real curve.
  if (!smoke && hw >= 4 && arms[0].contended_rate() >= 0.02 &&
      best_thr < 1.1 * arms[0].throughput_mfps()) {
    std::fprintf(stderr,
                 "FAIL: unsharded pool contended %.1f%% but striping gained "
                 "<10%% throughput (%.2f -> %.2f Mfetch/s)\n",
                 100.0 * arms[0].contended_rate(),
                 arms[0].throughput_mfps(), best_thr);
    return 1;
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "shard");
  json.Field("smoke", smoke);
  json.Field("threads", static_cast<uint64_t>(cfg.num_threads));
  json.Field("hardware_concurrency", static_cast<uint64_t>(hw));
  json.Field("accesses_per_thread",
             static_cast<uint64_t>(cfg.accesses_per_thread));
  json.Field("zipf_s", cfg.zipf_s);
  json.Field("page_space", static_cast<uint64_t>(cfg.page_space));
  json.Key("arms").BeginArray();
  for (const ArmResult& arm : arms) {
    json.BeginObject();
    json.Field("shards", static_cast<uint64_t>(arm.shards));
    json.Field("wall_ms", arm.best_wall_ms);
    json.Field("fetches", arm.fetches);
    json.Field("throughput_mfps", arm.throughput_mfps());
    json.Field("speedup_vs_unsharded", arm.throughput_mfps() / base);
    json.Field("lock_acquisitions", arm.lock.acquisitions);
    json.Field("lock_contended", arm.lock.contended);
    json.Field("contended_rate", arm.contended_rate());
    json.Field("avg_wait_ns", arm.avg_wait_ns());
    json.Field("avg_hold_ns", arm.avg_hold_ns());
    json.EndObject();
  }
  json.EndArray();
  json.Field("solo_parity_sharded_vs_unsharded", parity);
  json.Field("solo_rerun_deterministic", deterministic);
  json.EndObject();
  if (!json.WriteToFile("BENCH_shard.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_shard.json\n");
    return 0;
  }
  std::printf("wrote BENCH_shard.json\n");
  return 0;
}
