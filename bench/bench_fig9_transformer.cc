// Figure 9: Pythia vs sequence-prediction transformers.
//
// The paper trains Longformer next-block predictors on template 91 (the
// smallest traces) in four variants — raw vs deduplicated input, context
// window 32 vs 64 — and finds comparable F1 but training/inference costs
// that are orders of magnitude higher than Pythia's one-shot classifier
// (23x training, 8500x inference on far better hardware). This benchmark
// reproduces the comparison with the from-scratch causal transformer.
#include <chrono>

#include "bench/common.h"
#include "core/seq_baseline.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb91);
  WorkloadModel model = CachedModel(*db, workload, DefaultPredictor(),
                                    "dsb_t91_default");

  // Pythia: median F1 and measured one-shot inference cost per query.
  std::vector<double> pythia_f1;
  double pythia_infer_seconds = 0.0;
  for (size_t ti : workload.test_indices) {
    const WorkloadQuery& q = workload.queries[ti];
    const auto start = std::chrono::steady_clock::now();
    const auto predicted = model.Predict(q.tokens);
    pythia_infer_seconds += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    const auto truth = model.RestrictToModeled(ProcessTrace(q.trace));
    pythia_f1.push_back(ComputeSetMetrics(predicted, truth).f1);
  }
  pythia_infer_seconds /= workload.test_indices.size();
  const double pythia_train_seconds = model.report().train_seconds;

  TablePrinter table({"predictor", "median F1", "train (s)",
                      "inference (s/query)", "train vs PYTHIA",
                      "inference vs PYTHIA"});
  table.AddRow({"PYTHIA", TablePrinter::Num(Summarize(pythia_f1).median, 3),
                TablePrinter::Num(pythia_train_seconds, 1),
                TablePrinter::Num(pythia_infer_seconds, 4), "1x", "1x"});

  for (bool dedup : {false, true}) {
    for (size_t ctx : {size_t{32}, size_t{64}}) {
      SeqBaselineConfig config;
      config.context_window = ctx;
      config.dedup_input = dedup;
      config.epochs = 2;
      config.max_seq_len = 384;
      config.max_train_sequences = 40;
      SequenceTransformerBaseline baseline(workload, config);

      std::vector<double> f1;
      double infer_seconds = 0.0;
      for (size_t ti : workload.test_indices) {
        const SeqEvalResult r =
            baseline.Evaluate(workload.queries[ti].trace);
        f1.push_back(r.accuracy.f1);
        infer_seconds += r.infer_seconds;
      }
      infer_seconds /= workload.test_indices.size();
      const std::string name = std::string("seq-transformer ctx=") +
                               std::to_string(ctx) +
                               (dedup ? " dedup" : " raw");
      table.AddRow(
          {name, TablePrinter::Num(Summarize(f1).median, 3),
           TablePrinter::Num(baseline.train_seconds(), 1),
           TablePrinter::Num(infer_seconds, 4),
           TablePrinter::Num(baseline.train_seconds() / pythia_train_seconds,
                             1) +
               "x",
           TablePrinter::Num(infer_seconds / pythia_infer_seconds, 0) +
               "x"});
    }
  }

  std::printf("=== Figure 9: Pythia vs sequence-transformer predictors "
              "(dsb_t91) ===\n");
  table.Print();
  std::printf("\nPaper shape: comparable F1, but sequence models need far "
              "more training and per-block (autoregressive) inference time, "
              "making them impractical for prefetching. (Note: the seq "
              "baselines above are trained on truncated traces and few "
              "epochs; their *costs* are already prohibitive at this tiny "
              "scale.)\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
