// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// matrix multiply, B-tree lookups, buffer-pool fetches, plan serialization
// and one-shot model inference. These are wall-clock kernels, not paper
// figures; they document the cost structure behind the virtual-time model.
#include <benchmark/benchmark.h>

#include "bufmgr/buffer_pool.h"
#include "core/model.h"
#include "exec/serializer.h"
#include "index/btree.h"
#include "nn/matrix.h"
#include "util/rng.h"
#include "workload/database.h"
#include "workload/templates.h"

namespace pythia {
namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(1);
  nn::Matrix a(n, n), b(n, n);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.UniformRange(-1, 1));
    b.data()[i] = static_cast<float>(rng.UniformRange(-1, 1));
  }
  for (auto _ : state) {
    nn::Matrix c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_BTreeLookup(benchmark::State& state) {
  Catalog catalog;
  Relation* rel = catalog.CreateRelation("t", {"k"}, 50);
  Pcg32 rng(2);
  const Value domain = state.range(0);
  for (Value i = 0; i < domain; ++i) {
    rel->AppendRow({rng.UniformInt(0, domain)});
  }
  BTreeIndex index(&catalog, *rel, "k", 64);
  for (auto _ : state) {
    auto rids = index.Lookup(rng.UniformInt(0, domain), nullptr);
    benchmark::DoNotOptimize(rids);
  }
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  LatencyModel latency;
  OsPageCache os(OsPageCache::Options{}, latency);
  BufferPool pool(BufferPool::Options{.capacity_pages = 1024}, &os, latency);
  for (uint32_t p = 0; p < 512; ++p) pool.FetchPage(PageId{1, p}, 0);
  Pcg32 rng(3);
  for (auto _ : state) {
    auto r = pool.FetchPage(PageId{1, rng.UniformU32(512)}, 1000);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchEvict(benchmark::State& state) {
  LatencyModel latency;
  OsPageCache os(OsPageCache::Options{}, latency);
  BufferPool pool(BufferPool::Options{.capacity_pages = 256}, &os, latency);
  uint32_t p = 0;
  for (auto _ : state) {
    auto r = pool.FetchPage(PageId{1, p++}, p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BufferPoolFetchEvict);

void BM_PlanSerialize(benchmark::State& state) {
  auto db = BuildDsbDatabase(DsbConfig{5, 42});
  Pcg32 rng(4);
  QueryInstance q = SampleQuery(*db, TemplateId::kDsb18, &rng);
  PlanSerializer serializer(&db->catalog);
  for (auto _ : state) {
    auto tokens = serializer.Serialize(*q.plan);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_PlanSerialize);

void BM_ModelInference(benchmark::State& state) {
  PythiaModelConfig config;
  config.vocab_size = 256;
  config.num_outputs = static_cast<size_t>(state.range(0));
  PythiaModel model(config);
  std::vector<int32_t> tokens;
  Pcg32 rng(5);
  for (int i = 0; i < 40; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.UniformU32(256)));
  }
  for (auto _ : state) {
    auto pages = model.Predict(tokens);
    benchmark::DoNotOptimize(pages);
  }
}
BENCHMARK(BM_ModelInference)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ModelTrainStep(benchmark::State& state) {
  PythiaModelConfig config;
  config.vocab_size = 256;
  config.num_outputs = 1024;
  PythiaModel model(config);
  std::vector<int32_t> tokens;
  Pcg32 rng(6);
  for (int i = 0; i < 40; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.UniformU32(256)));
  }
  const std::vector<uint32_t> positives = {5, 99, 512, 700};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainStep(tokens, positives));
  }
}
BENCHMARK(BM_ModelTrainStep);

}  // namespace
}  // namespace pythia

BENCHMARK_MAIN();
