// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// matrix multiply, B-tree lookups, buffer-pool fetches, plan serialization
// and one-shot model inference. These are wall-clock kernels, not paper
// figures; they document the cost structure behind the virtual-time model.
//
// In addition to the google-benchmark suite, main() first writes
// BENCH_kernels.json: naive-vs-blocked GEMM throughput at the shapes the
// inference path actually runs, so the kernel speedup is recorded in a
// machine-readable artifact.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bufmgr/buffer_pool.h"
#include "core/model.h"
#include "exec/serializer.h"
#include "index/btree.h"
#include "nn/matrix.h"
#include "util/rng.h"
#include "workload/database.h"
#include "workload/templates.h"

namespace pythia {
namespace {

nn::Matrix RandomMatrix(size_t rows, size_t cols, Pcg32* rng) {
  nn::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->UniformRange(-1, 1));
  }
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(1);
  nn::Matrix a = RandomMatrix(n, n, &rng);
  nn::Matrix b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(1);
  nn::Matrix a = RandomMatrix(n, n, &rng);
  nn::Matrix b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::reference::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulNaive)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulBT(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(1);
  nn::Matrix a = RandomMatrix(n, n, &rng);
  nn::Matrix b = RandomMatrix(n, n, &rng);
  nn::Matrix c;
  for (auto _ : state) {
    nn::MatMulBTInto(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulBT)->Arg(64);

void BM_MatMulBTNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(1);
  nn::Matrix a = RandomMatrix(n, n, &rng);
  nn::Matrix b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::reference::MatMulBT(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulBTNaive)->Arg(64);

void BM_BTreeLookup(benchmark::State& state) {
  Catalog catalog;
  Relation* rel = catalog.CreateRelation("t", {"k"}, 50);
  Pcg32 rng(2);
  const Value domain = state.range(0);
  for (Value i = 0; i < domain; ++i) {
    rel->AppendRow({rng.UniformInt(0, domain)});
  }
  BTreeIndex index(&catalog, *rel, "k", 64);
  for (auto _ : state) {
    auto rids = index.Lookup(rng.UniformInt(0, domain), nullptr);
    benchmark::DoNotOptimize(rids);
  }
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  LatencyModel latency;
  OsPageCache os(OsPageCache::Options{}, latency);
  BufferPool pool(BufferPool::Options{.capacity_pages = 1024}, &os, latency);
  for (uint32_t p = 0; p < 512; ++p) pool.FetchPage(PageId{1, p}, 0);
  Pcg32 rng(3);
  for (auto _ : state) {
    auto r = pool.FetchPage(PageId{1, rng.UniformU32(512)}, 1000);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchEvict(benchmark::State& state) {
  LatencyModel latency;
  OsPageCache os(OsPageCache::Options{}, latency);
  BufferPool pool(BufferPool::Options{.capacity_pages = 256}, &os, latency);
  uint32_t p = 0;
  for (auto _ : state) {
    auto r = pool.FetchPage(PageId{1, p++}, p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BufferPoolFetchEvict);

void BM_PlanSerialize(benchmark::State& state) {
  auto db = BuildDsbDatabase(DsbConfig{5, 42});
  Pcg32 rng(4);
  QueryInstance q = SampleQuery(*db, TemplateId::kDsb18, &rng);
  PlanSerializer serializer(&db->catalog);
  for (auto _ : state) {
    auto tokens = serializer.Serialize(*q.plan);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_PlanSerialize);

void BM_ModelInference(benchmark::State& state) {
  PythiaModelConfig config;
  config.vocab_size = 256;
  config.num_outputs = static_cast<size_t>(state.range(0));
  PythiaModel model(config);
  std::vector<int32_t> tokens;
  Pcg32 rng(5);
  for (int i = 0; i < 40; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.UniformU32(256)));
  }
  for (auto _ : state) {
    auto pages = model.Predict(tokens);
    benchmark::DoNotOptimize(pages);
  }
}
BENCHMARK(BM_ModelInference)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ModelTrainStep(benchmark::State& state) {
  PythiaModelConfig config;
  config.vocab_size = 256;
  config.num_outputs = 1024;
  PythiaModel model(config);
  std::vector<int32_t> tokens;
  Pcg32 rng(6);
  for (int i = 0; i < 40; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.UniformU32(256)));
  }
  const std::vector<uint32_t> positives = {5, 99, 512, 700};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainStep(tokens, positives));
  }
}
BENCHMARK(BM_ModelTrainStep);

// ---------------------------------------------------------------------------
// BENCH_kernels.json: hand-timed naive-vs-blocked GEMM comparison.
// ---------------------------------------------------------------------------

using GemmFn = nn::Matrix (*)(const nn::Matrix&, const nn::Matrix&);

// Median-of-repeats GFLOP/s for one (m x k) * (k x n) product.
double MeasureGflops(GemmFn fn, size_t m, size_t k, size_t n) {
  Pcg32 rng(7);
  nn::Matrix a = RandomMatrix(m, k, &rng);
  nn::Matrix b = RandomMatrix(k, n, &rng);
  // Warm up (also forces one-time SIMD dispatch out of the timed region).
  for (int i = 0; i < 3; ++i) {
    nn::Matrix c = fn(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  double best_seconds = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    // Enough iterations that one rep is comfortably above timer noise.
    const int iters = std::max(1, static_cast<int>(2e7 / flops) * 10);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      nn::Matrix c = fn(a, b);
      benchmark::DoNotOptimize(c.data());
    }
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        iters;
    best_seconds = std::min(best_seconds, s);
  }
  return flops / best_seconds / 1e9;
}

nn::Matrix MatMulBTWrap(const nn::Matrix& a, const nn::Matrix& b) {
  return nn::MatMulBT(a, b);
}
nn::Matrix MatMulATWrap(const nn::Matrix& a, const nn::Matrix& b) {
  return nn::MatMulAT(a, b);
}

void WriteKernelBenchJson(const char* path) {
  struct Entry {
    const char* name;
    GemmFn fast;
    GemmFn naive;
    size_t m, k, n;
  };
  // 40x64 * 64x64 is the encoder projection shape of a 40-token plan at
  // the default embed_dim; the square shapes bracket it.
  const Entry entries[] = {
      {"matmul_64", nn::MatMul, nn::reference::MatMul, 64, 64, 64},
      {"matmul_plan_40x64x64", nn::MatMul, nn::reference::MatMul, 40, 64, 64},
      {"matmul_128", nn::MatMul, nn::reference::MatMul, 128, 128, 128},
      {"matmul_bt_64", MatMulBTWrap, nn::reference::MatMulBT, 64, 64, 64},
      {"matmul_at_64", MatMulATWrap, nn::reference::MatMulAT, 64, 64, 64},
  };
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"simd_enabled\": %s,\n  \"kernels\": [\n",
               nn::SimdKernelsEnabled() ? "true" : "false");
  bool first = true;
  for (const Entry& e : entries) {
    const double fast = MeasureGflops(e.fast, e.m, e.k, e.n);
    const double naive = MeasureGflops(e.naive, e.m, e.k, e.n);
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"shape\": [%zu, %zu, %zu], "
                 "\"naive_gflops\": %.3f, \"fast_gflops\": %.3f, "
                 "\"speedup\": %.2f}",
                 first ? "" : ",\n", e.name, e.m, e.k, e.n, naive, fast,
                 fast / naive);
    first = false;
    std::fprintf(stderr, "%-24s naive %7.3f GF/s  fast %7.3f GF/s  %.2fx\n",
                 e.name, naive, fast, fast / naive);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) {
  pythia::WriteKernelBenchJson("BENCH_kernels.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
