// Figure 12b: impact of training-data size. Pythia is trained on random
// 10/25/50/75/100% subsets of the training queries; F1 rises with training
// data with diminishing marginal improvement.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb18);
  TablePrinter table(
      {"training fraction", "train queries", "PYTHIA F1 med (p25-p75)"});
  for (double fraction : {0.10, 0.25, 0.50, 0.75, 1.00}) {
    PredictorOptions options = DefaultPredictor();
    options.train_fraction = fraction;
    WorkloadModel model = CachedModel(
        *db, workload, options,
        "dsb_t18_frac" + std::to_string(static_cast<int>(fraction * 100)));
    const std::vector<double> f1 = PythiaF1(&model, workload);
    table.AddRow(
        {TablePrinter::Num(fraction * 100, 0) + "%",
         TablePrinter::Int(static_cast<long long>(
             std::max<size_t>(1, workload.train_indices.size() * fraction))),
         BoxCell(f1)});
  }
  std::printf("=== Figure 12b: F1 vs training-set size (dsb_t18) ===\n");
  table.Print();
  std::printf("\nPaper shape: accuracy increases with training data; the "
              "marginal improvement steadily decreases (models can be "
              "trained incrementally).\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
