// Figures 10 & 11: impact of the number of distinct non-sequential reads a
// test query performs. Test queries are bucketized into bottom-25% / middle
// / top-25% by their distinct non-sequential page count; F1 (Fig 10) and
// speedup (Fig 11) are reported per bucket.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto dsb = Dsb();
  auto imdb = Imdb();
  TablePrinter f1_table({"workload", "non-seq bucket", "PYTHIA F1 med",
                         "mean distinct non-seq"});
  TablePrinter sp_table(
      {"workload", "non-seq bucket", "PYTHIA speedup", "ORCL speedup"});

  for (TemplateId id : {TemplateId::kDsb18, TemplateId::kDsb19,
                        TemplateId::kDsb91, TemplateId::kImdb1a}) {
    const bool is_dsb = IsDsbTemplate(id);
    const Database& db = is_dsb ? *dsb : *imdb;
    Workload workload =
        MakeWorkload(db, id, is_dsb ? kNumQueries : kImdbNumQueries);
    const PredictorOptions options =
        is_dsb ? DefaultPredictor() : ImdbPredictor(db);
    WorkloadModel model = CachedModel(
        db, workload, options, std::string(TemplateName(id)) + "_default");

    std::vector<double> nonseq_counts;
    for (size_t ti : workload.test_indices) {
      nonseq_counts.push_back(static_cast<double>(
          workload.queries[ti].trace.DistinctNonSequential().size()));
    }
    const std::vector<int> buckets = QuartileBuckets(nonseq_counts);

    SimEnvironment env(DefaultSim());
    PythiaSystem system(&env);
    system.AddWorkload(workload, std::move(model));
    const std::vector<QueryEval> evals = EvaluateTestQueries(
        &system, workload, {RunMode::kPythia, RunMode::kOracle});

    for (int bucket = 0; bucket < 3; ++bucket) {
      std::vector<double> f1, sp, orcl, counts;
      for (size_t i = 0; i < evals.size(); ++i) {
        if (buckets[i] != bucket) continue;
        f1.push_back(evals[i].F1(RunMode::kPythia));
        sp.push_back(evals[i].Speedup(RunMode::kPythia));
        orcl.push_back(evals[i].Speedup(RunMode::kOracle));
        counts.push_back(nonseq_counts[i]);
      }
      if (f1.empty()) continue;
      f1_table.AddRow({TemplateName(id), BucketName(bucket),
                       TablePrinter::Num(Summarize(f1).median, 3),
                       TablePrinter::Num(Summarize(counts).mean, 0)});
      sp_table.AddRow({TemplateName(id), BucketName(bucket),
                       TablePrinter::Num(Summarize(sp).median, 2) + "x",
                       TablePrinter::Num(Summarize(orcl).median, 2) + "x"});
    }
  }

  std::printf("=== Figure 10: F1 by number of distinct non-sequential "
              "reads ===\n");
  f1_table.Print();
  std::printf("\n=== Figure 11: speedup by number of distinct "
              "non-sequential reads ===\n");
  sp_table.Print();
  std::printf("\nPaper shape: queries with more non-sequential reads are "
              "both easier to predict and benefit more from prefetching.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
