// Figure 12e: buffer replacement strategy. Postgres only ships Clock; LRU
// and MRU are added to the simulated buffer manager. A 512-page buffer
// (half the default) makes replacement decisions matter more. Pythia
// provides benefits under every policy; LRU edges out Clock, MRU trails.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb18);

  TablePrinter table({"replacement policy", "PYTHIA speedup med (p25-p75)",
                      "ORCL speedup med"});
  for (ReplacementPolicyKind policy :
       {ReplacementPolicyKind::kClock, ReplacementPolicyKind::kLru,
        ReplacementPolicyKind::kMru}) {
    SimOptions sim = DefaultSim();
    sim.buffer_pages = 512;  // paper uses half the default buffer here
    sim.policy = policy;
    SimEnvironment env(sim);
    PythiaSystem system(&env);
    // The trained model is identical across policies; reload from cache.
    WorkloadModel model = CachedModel(*db, workload, DefaultPredictor(),
                                      "dsb_t18_default");
    system.AddWorkload(workload, std::move(model));
    const std::vector<QueryEval> evals = EvaluateTestQueries(
        &system, workload, {RunMode::kPythia, RunMode::kOracle});
    table.AddRow(
        {ReplacementPolicyName(policy),
         BoxCell(Collect(evals, RunMode::kPythia, true), 2) + "x",
         TablePrinter::Num(
             Summarize(Collect(evals, RunMode::kOracle, true)).median, 2) +
             "x"});
  }

  std::printf("=== Figure 12e: speedup under Clock / LRU / MRU replacement "
              "(512-page buffer, dsb_t18) ===\n");
  table.Print();
  std::printf("\nPaper shape: Pythia helps regardless of policy; LRU edges "
              "slightly ahead of Clock, MRU performs worst.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
