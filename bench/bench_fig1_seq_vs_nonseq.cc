// Figure 1: prefetching sequential vs non-sequential reads.
//
// An oracle provides the exact block-access sequence; one variant prefetches
// only the sequentially-scanned blocks, the other only the non-sequential
// ones. The paper's motivating result: prefetching sequential reads buys
// almost nothing (the OS readahead already covers them), while prefetching
// non-sequential reads yields the real speedup.
#include "bench/common.h"

namespace pythia::bench {
namespace {

// Distinct sequentially-accessed pages, in access order.
std::vector<PageId> SequentialPages(const QueryTrace& trace) {
  std::vector<PageId> out;
  std::unordered_set<PageId> seen;
  for (const PageAccess& a : trace.accesses) {
    if (a.sequential && seen.insert(a.page).second) out.push_back(a.page);
  }
  return out;
}

void Run() {
  auto db = Dsb();
  TablePrinter table({"template", "prefetch sequential only",
                      "prefetch non-sequential only"});
  PrefetcherOptions prefetch;
  prefetch.order = PrefetchOrder::kAccessOrder;  // oracle knows the order

  for (TemplateId id :
       {TemplateId::kDsb18, TemplateId::kDsb19, TemplateId::kDsb91}) {
    Workload workload = MakeWorkload(*db, id);
    SimEnvironment env(DefaultSim());
    std::vector<double> seq_speedup, nonseq_speedup;
    for (size_t ti : workload.test_indices) {
      const QueryTrace& trace = workload.queries[ti].trace;
      env.ColdRestart();
      const SimTime base =
          ReplayQuery(trace, {}, prefetch, &env).elapsed_us;
      env.ColdRestart();
      const SimTime seq_t =
          ReplayQuery(trace, SequentialPages(trace), prefetch, &env)
              .elapsed_us;
      env.ColdRestart();
      const SimTime nonseq_t =
          ReplayQuery(trace, OraclePages(trace), prefetch, &env).elapsed_us;
      seq_speedup.push_back(static_cast<double>(base) / seq_t);
      nonseq_speedup.push_back(static_cast<double>(base) / nonseq_t);
    }
    table.AddRow({TemplateName(id), BoxCell(seq_speedup, 2) + "x",
                  BoxCell(nonseq_speedup, 2) + "x"});
  }
  std::printf("=== Figure 1: oracle prefetch of sequential vs "
              "non-sequential reads (speedup over DFLT) ===\n");
  table.Print();
  std::printf("\nPaper shape: non-sequential prefetching yields the "
              "significant speedups; sequential prefetching is largely "
              "covered by OS readahead already.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
