// Figure 13a: multiple queries, no overlap. Batches of 4 queries sampled
// uniformly from the 3 DSB templates run back-to-back *without* clearing
// caches between them; the whole-batch speedup of PYTHIA and ORCL over
// DFLT is reported. Benefits shrink relative to the cold single-query
// setting because some correct prefetches are already buffered from
// previous queries.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  std::map<TemplateId, Workload> workloads;
  SimEnvironment env(DefaultSim());
  PythiaSystem system(&env);
  for (TemplateId id :
       {TemplateId::kDsb18, TemplateId::kDsb19, TemplateId::kDsb91}) {
    workloads.emplace(id, MakeWorkload(*db, id));
    WorkloadModel model =
        CachedModel(*db, workloads.at(id), DefaultPredictor(),
                    std::string(TemplateName(id)) + "_default");
    system.AddWorkload(workloads.at(id), std::move(model));
  }

  TablePrinter table({"batch", "PYTHIA speedup", "ORCL speedup"});
  Pcg32 rng(77, 0x13a);
  const TemplateId ids[] = {TemplateId::kDsb18, TemplateId::kDsb19,
                            TemplateId::kDsb91};
  for (int batch = 0; batch < 4; ++batch) {
    // Sample 4 test queries uniformly across templates.
    std::vector<const WorkloadQuery*> queries;
    for (int i = 0; i < 4; ++i) {
      const Workload& w = workloads.at(ids[rng.UniformU32(3)]);
      queries.push_back(
          &w.queries[w.test_indices[rng.UniformU32(
              static_cast<uint32_t>(w.test_indices.size()))]]);
    }

    // Run the batch sequentially (warm caches between queries) per mode.
    auto run_batch = [&](RunMode mode) {
      env.ColdRestart();
      SimTime total = 0;
      for (const WorkloadQuery* q : queries) {
        total += system.RunQuery(*q, mode, PrefetcherOptions{},
                                 /*cold=*/false)
                     .elapsed_us;
      }
      return total;
    };
    const SimTime base = run_batch(RunMode::kDefault);
    const SimTime pythia = run_batch(RunMode::kPythia);
    const SimTime oracle = run_batch(RunMode::kOracle);
    table.AddRow({"batch " + std::to_string(batch + 1),
                  TablePrinter::Num(static_cast<double>(base) / pythia, 2) +
                      "x",
                  TablePrinter::Num(static_cast<double>(base) / oracle, 2) +
                      "x"});
  }

  std::printf("=== Figure 13a: sequential batches of 4 queries (3 "
              "templates, warm caches within a batch) ===\n");
  table.Print();
  std::printf("\nPaper shape: Pythia stays close to the oracle prefetcher; "
              "gains are smaller than cold single-query runs because some "
              "prefetched pages are already buffered.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
