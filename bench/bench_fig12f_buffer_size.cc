// Figure 12f: buffer size. With small buffers Pythia must limit prefetching
// to stay within memory bounds; larger buffers let it prefetch everything
// it predicts, increasing the benefit.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb18);

  TablePrinter table({"buffer pages", "PYTHIA speedup med (p25-p75)",
                      "prefetches skipped (budget)"});
  for (size_t buffer_pages : {256, 512, 1024, 2048, 4096}) {
    SimOptions sim = DefaultSim();
    sim.buffer_pages = buffer_pages;
    SimEnvironment env(sim);
    PythiaSystem system(&env);
    WorkloadModel model = CachedModel(*db, workload, DefaultPredictor(),
                                      "dsb_t18_default");
    system.AddWorkload(workload, std::move(model));
    const std::vector<QueryEval> evals =
        EvaluateTestQueries(&system, workload, {RunMode::kPythia});
    uint64_t skipped = 0;
    for (const QueryEval& e : evals) {
      skipped += e.metrics.at(RunMode::kPythia).prefetch_stats.skipped_budget;
    }
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(buffer_pages)),
         BoxCell(Collect(evals, RunMode::kPythia, true), 2) + "x",
         TablePrinter::Int(static_cast<long long>(skipped))});
  }

  std::printf("=== Figure 12f: Pythia speedup vs buffer size (dsb_t18) "
              "===\n");
  table.Print();
  std::printf("\nPaper shape: more buffer space allows prefetching all "
              "predicted pages, increasing the benefit; small buffers force "
              "limited prefetching.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
