// Table 1: statistics for the template workloads used in the experiments —
// sequential IO per query, min/max distinct non-sequential IO (with the
// fraction of the database's pages it represents), distinct query plans in
// the workload, and relations joined (max index-scanned).
#include <set>

#include "bench/common.h"

namespace pythia::bench {
namespace {

// Counts relations and index scans in a plan.
void CountJoins(const PlanNode& node, std::set<std::string>* relations,
                size_t* index_scanned) {
  if (node.type == PlanNodeType::kSeqScan ||
      node.type == PlanNodeType::kIndexScan) {
    relations->insert(node.relation);
    if (node.type == PlanNodeType::kIndexScan) ++*index_scanned;
  }
  for (const auto& child : node.children) {
    CountJoins(*child, relations, index_scanned);
  }
}

void Run() {
  auto dsb = Dsb();
  auto imdb = Imdb();
  TablePrinter table({"statistic", "imdb_1a", "dsb_t18", "dsb_t19",
                      "dsb_t91"});

  struct Stats {
    uint64_t seq_io = 0;
    size_t min_nonseq = SIZE_MAX, max_nonseq = 0;
    size_t distinct_plans = 0;
    size_t relations = 0, max_index_scanned = 0;
    uint64_t db_pages = 0;
  };
  std::map<TemplateId, Stats> stats;

  for (TemplateId id : {TemplateId::kImdb1a, TemplateId::kDsb18,
                        TemplateId::kDsb19, TemplateId::kDsb91}) {
    const Database& db = IsDsbTemplate(id) ? *dsb : *imdb;
    const Workload workload = MakeWorkload(
        db, id, IsDsbTemplate(id) ? kNumQueries : kImdbNumQueries);
    Stats& s = stats[id];
    s.db_pages = db.TotalPages();
    s.distinct_plans = workload.DistinctPlans();
    for (const WorkloadQuery& q : workload.queries) {
      s.seq_io += q.trace.SequentialCount();
      const size_t nonseq = q.trace.DistinctNonSequential().size();
      s.min_nonseq = std::min(s.min_nonseq, nonseq);
      s.max_nonseq = std::max(s.max_nonseq, nonseq);
      std::set<std::string> relations;
      size_t index_scanned = 0;
      CountJoins(*q.instance.plan, &relations, &index_scanned);
      s.relations = std::max(s.relations, relations.size());
      // index_scanned counts scan *nodes*; distinct relations touched by
      // index is what Table 1 reports, so cap by relations.
      s.max_index_scanned =
          std::max(s.max_index_scanned, std::min(index_scanned,
                                                 relations.size()));
    }
    s.seq_io /= workload.queries.size();
  }

  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells = {name};
    for (TemplateId id : {TemplateId::kImdb1a, TemplateId::kDsb18,
                          TemplateId::kDsb19, TemplateId::kDsb91}) {
      cells.push_back(getter(stats[id]));
    }
    table.AddRow(cells);
  };

  row("Sequential IO (avg per query)", [](const Stats& s) {
    return TablePrinter::Int(static_cast<long long>(s.seq_io));
  });
  row("min(distinct non-sequential IO)", [](const Stats& s) {
    return TablePrinter::Int(static_cast<long long>(s.min_nonseq)) + " (" +
           TablePrinter::Num(100.0 * s.min_nonseq / s.db_pages, 2) + "%)";
  });
  row("max(distinct non-sequential IO)", [](const Stats& s) {
    return TablePrinter::Int(static_cast<long long>(s.max_nonseq)) + " (" +
           TablePrinter::Num(100.0 * s.max_nonseq / s.db_pages, 2) + "%)";
  });
  row("Distinct query plans in workload", [](const Stats& s) {
    return TablePrinter::Int(static_cast<long long>(s.distinct_plans));
  });
  row("Relations joined (max index scanned)", [](const Stats& s) {
    return TablePrinter::Int(static_cast<long long>(s.relations)) + " (" +
           TablePrinter::Int(static_cast<long long>(s.max_index_scanned)) +
           ")";
  });

  std::printf("=== Table 1: statistics for template workloads ===\n");
  table.Print();
  std::printf("\nPaper shape: t91 has by far the highest non-sequential "
              "fraction; t18 the most distinct plans among DSB templates; "
              "imdb_1a joins the most relations.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
