// Minimal streaming JSON writer for the benchmark binaries: each bench
// prints its human-readable table to stdout and mirrors the raw numbers
// into a BENCH_<name>.json file so runs can be diffed and plotted without
// scraping tables. No external dependency — the needs here are a strict
// subset of JSON (objects, arrays, strings, finite numbers, bools).
#ifndef PYTHIA_BENCH_JSON_WRITER_H_
#define PYTHIA_BENCH_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pythia::bench {

class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& k) {
    Comma();
    Escaped(k);
    out_ += ':';
    just_keyed_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& v) {
    Comma();
    Escaped(v);
    return *this;
  }
  JsonWriter& Bool(bool v) { return Raw(v ? "true" : "false"); }
  JsonWriter& Int(int64_t v) { return Raw(std::to_string(v)); }
  JsonWriter& Uint(uint64_t v) { return Raw(std::to_string(v)); }
  JsonWriter& Double(double v) {
    if (!std::isfinite(v)) return Raw("null");  // JSON has no inf/nan
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return Raw(buf);
  }

  // Convenience for the common "key": value pairs. The const char* overload
  // matters: without it a string literal converts to bool, not std::string.
  JsonWriter& Field(const std::string& k, const std::string& v) {
    return Key(k).String(v);
  }
  JsonWriter& Field(const std::string& k, const char* v) {
    return Key(k).String(v);
  }
  JsonWriter& Field(const std::string& k, double v) {
    return Key(k).Double(v);
  }
  JsonWriter& Field(const std::string& k, uint64_t v) {
    return Key(k).Uint(v);
  }
  JsonWriter& Field(const std::string& k, int v) {
    return Key(k).Int(v);
  }
  JsonWriter& Field(const std::string& k, bool v) { return Key(k).Bool(v); }

  const std::string& str() const { return out_; }

  // Writes the document to `path` (with a trailing newline); returns false
  // on I/O failure. The writer does not validate balance — the bench code
  // is the test for that, and a malformed file fails visibly downstream.
  bool WriteToFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(out_.data(), 1, out_.size(), f) == out_.size() &&
        std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
  }

 private:
  JsonWriter& Open(char c) {
    Comma();
    out_ += c;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& Close(char c) {
    out_ += c;
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Raw(const std::string& v) {
    Comma();
    out_ += v;
    return *this;
  }
  void Comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }
  void Escaped(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

}  // namespace pythia::bench

#endif  // PYTHIA_BENCH_JSON_WRITER_H_
