// Open-loop fleet harness: tens to hundreds of sessions with Poisson or
// bursty arrivals and Zipf-skewed template/query popularity, replayed
// concurrently under admission control and the PrefetchGovernor, with plan
// prediction served either sequentially (PythiaSystem::PlanConcurrentQuery,
// one forward pass per cache miss) or through the batched prediction engine
// (core/batch_predictor.h, one multi-row decoder GEMM per flush window).
//
// Self-checking, exit 1 on violation:
//  - bit-identical batching: for batch sizes {1, 4, 32, 128}, the batched
//    engine's page list for every session equals the sequential path's,
//    byte for byte (ungoverned systems, so every session plans full-neural);
//  - fleet scale: peak overlapping admitted sessions >= 50 — 10x the
//    5-query concurrency of the bench_fig13 harnesses;
//  - amortization: mean GEMM rows per forward pass >= 8 under the bursty
//    arm (the whole point of coalescing);
//  - dedupe observable: identical plans inside one window single-flight
//    (deduped > 0) and followers receive fanned-out results;
//  - governed tail: batched-arm p99 stays under a fixed multiple of the
//    uncontended solo runtime;
//  - hygiene: no pin leaks, every admitted session completes, rejection
//    accounting balances, and a same-seed rerun of the bursty batched arm
//    is byte-identical (only virtual-time quantities are serialized).
//
// Results land in BENCH_fleet.json. `--smoke` shrinks database scale,
// query population and session count for the CI fleet-smoke arm.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/json_writer.h"
#include "core/batch_predictor.h"
#include "core/replay.h"
#include "util/table_printer.h"

namespace pythia {
namespace {

struct FleetConfig {
  int scale_factor = 100;
  int num_queries = 300;  // per template
  int epochs = 20;
  size_t num_sessions = 600;
  size_t max_active = 64;
  size_t batch_rows = 64;
  SimTime flush_deadline_us = 2000;
  SimTime base_start_delay_us = 500;
  uint64_t fleet_seed = 20260808;
  // Calibrated from the uncontended solo runtime of session 0's query.
  SimTime solo_us = 0;
  SimTime mean_gap_us = 0;
  SimTime deadline_us = 0;
  SimTime burst_gap_us = 0;
  std::string key18, key91;
};

struct Fleet {
  const Workload* workloads[2] = {nullptr, nullptr};
  std::vector<FleetSessionSpec> sessions;

  const WorkloadQuery& Query(size_t i) const {
    const FleetSessionSpec& s = sessions[i];
    return workloads[s.workload_index]->queries[s.query_index];
  }
};

FleetOptions MakeFleetOptions(const FleetConfig& cfg, ArrivalProcess arrivals) {
  FleetOptions f;
  f.num_sessions = cfg.num_sessions;
  f.arrivals = arrivals;
  f.mean_gap_us = static_cast<double>(cfg.mean_gap_us);
  f.burst_size = cfg.batch_rows;
  f.burst_gap_us = cfg.burst_gap_us;
  f.intra_burst_gap_us = 10;
  f.seed = cfg.fleet_seed;
  return f;
}

// Fresh environment + system per arm: the prediction cache warms as a fleet
// runs, so sharing a system across arms would hand later arms a pre-warmed
// cache and fake their amortization numbers.
struct ArmSystem {
  std::unique_ptr<SimEnvironment> env;
  std::unique_ptr<PythiaSystem> system;
};

ArmSystem MakeSystem(const Workload& wl18, WorkloadModel& m18,
                     const Workload& wl91, WorkloadModel& m91,
                     bool governed) {
  ArmSystem a;
  a.env = std::make_unique<SimEnvironment>(bench::DefaultSim());
  a.system = std::make_unique<PythiaSystem>(a.env.get());
  a.system->AddWorkload(wl18, m18.Clone());
  a.system->AddWorkload(wl91, m91.Clone());
  if (governed) {
    GovernorOptions gopts;
    gopts.max_pinned_pages = 512;
    gopts.max_outstanding_aio = 32;
    a.system->EnableGovernor(gopts);
  }
  return a;
}

struct ArmResult {
  ConcurrentResult batch;
  GovernorStats governor;
  PredictionCacheStats cache;
  BatchPredictorStats bstats;  // zero for the sequential arms
  double rows_per_forward = 0.0;
  size_t peak_concurrency = 0;
  std::vector<double> latencies_us;
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
  uint64_t completed = 0, rejected = 0;
};

// Maximum number of admitted sessions whose [start, end) intervals overlap.
size_t PeakConcurrency(const ConcurrentResult& r) {
  std::vector<std::pair<SimTime, int>> events;
  for (size_t i = 0; i < r.queries.size(); ++i) {
    if (!r.queries[i].status.ok()) continue;
    events.emplace_back(r.start_us[i], +1);
    events.emplace_back(r.end_us[i], -1);
  }
  // Half-open intervals: at a shared timestamp an end frees its slot before
  // the next start claims one.
  std::sort(events.begin(), events.end());
  size_t live = 0, peak = 0;
  for (const auto& [t, delta] : events) {
    (void)t;
    live = static_cast<size_t>(static_cast<int64_t>(live) + delta);
    peak = std::max(peak, live);
  }
  return peak;
}

void FinishArm(ArmResult* arm, const ArmSystem& a, const char* label) {
  if (a.env->pool().pinned_frames() != 0 ||
      (a.system->governor() != nullptr &&
       a.system->governor()->pinned_pages() != 0)) {
    std::fprintf(stderr, "FATAL: pin leak after %s arm\n", label);
    std::exit(1);
  }
  if (a.system->governor() != nullptr) {
    arm->governor = a.system->governor()->stats();
  }
  arm->cache = a.system->prediction_cache_stats();
  for (size_t i = 0; i < arm->batch.queries.size(); ++i) {
    const QueryRunMetrics& m = arm->batch.queries[i];
    if (m.status.code() == StatusCode::kResourceExhausted) {
      ++arm->rejected;
      continue;
    }
    if (!m.status.ok()) {
      std::fprintf(stderr, "FATAL: %s session %zu did not complete: %s\n",
                   label, i, m.status.ToString().c_str());
      std::exit(1);
    }
    ++arm->completed;
    arm->latencies_us.push_back(static_cast<double>(m.elapsed_us));
  }
  if (arm->rejected != arm->batch.admission.rejected) {
    std::fprintf(stderr, "FATAL: %s rejection accounting mismatch\n", label);
    std::exit(1);
  }
  arm->peak_concurrency = PeakConcurrency(arm->batch);
  std::sort(arm->latencies_us.begin(), arm->latencies_us.end());
  arm->p50 = Quantile(arm->latencies_us, 0.50);
  arm->p90 = Quantile(arm->latencies_us, 0.90);
  arm->p99 = Quantile(arm->latencies_us, 0.99);
  arm->max = arm->latencies_us.empty() ? 0.0 : arm->latencies_us.back();
}

ConcurrentOptions GovernedOptions(const FleetConfig& cfg,
                                  PythiaSystem* system) {
  ConcurrentOptions copts;
  copts.governor = system->governor();
  copts.max_active_queries = cfg.max_active;
  // Nothing bounces: the fleet criteria are about tail latency and
  // amortization, and rejected sessions would mute both signals.
  copts.admission_queue_limit = cfg.num_sessions;
  copts.default_deadline_us = cfg.deadline_us;
  return copts;
}

PrefetcherOptions SessionOptions(const FleetConfig& cfg,
                                 const FleetSessionSpec& s) {
  PrefetcherOptions popts;
  popts.start_delay_us = cfg.base_start_delay_us;
  popts.priority = s.priority;
  return popts;
}

ArmResult RunSequentialArm(const FleetConfig& cfg, const Fleet& fleet,
                           const ArmSystem& a, const char* label) {
  std::vector<ConcurrentQuery> batch;
  batch.reserve(fleet.sessions.size());
  for (size_t i = 0; i < fleet.sessions.size(); ++i) {
    const FleetSessionSpec& s = fleet.sessions[i];
    batch.push_back(a.system->PlanConcurrentQuery(
        fleet.Query(i), RunMode::kPythia, s.arrival_us,
        SessionOptions(cfg, s)));
  }
  ArmResult arm;
  arm.batch =
      ReplayConcurrent(batch, GovernedOptions(cfg, a.system.get()), a.env.get());
  FinishArm(&arm, a, label);
  return arm;
}

// Drives the fleet's arrivals through the batch predictor and returns the
// per-session predictions (indexed by session). `charge_wait` adds the
// batching delay (ready - arrival) to each session's prefetch start delay —
// on for the replayed arms, off for the pure equivalence probes.
std::vector<BatchPrediction> PredictFleet(const FleetConfig& cfg,
                                          const Fleet& fleet,
                                          PythiaSystem* system,
                                          size_t batch_rows,
                                          BatchPredictorStats* stats_out) {
  BatchPredictorOptions bopts;
  bopts.max_batch_rows = batch_rows;
  bopts.flush_deadline_us = cfg.flush_deadline_us;
  BatchPredictor bp(system, bopts);
  std::vector<BatchPrediction> done;
  done.reserve(fleet.sessions.size());
  for (size_t i = 0; i < fleet.sessions.size(); ++i) {
    bp.PumpTo(fleet.sessions[i].arrival_us, &done);
    bp.Submit(i, fleet.Query(i), fleet.sessions[i].arrival_us, &done);
  }
  if (bp.pending() > 0) bp.PumpTo(bp.NextDeadline(), &done);
  if (bp.pending() > 0 || done.size() != fleet.sessions.size()) {
    std::fprintf(stderr, "FATAL: batch predictor lost sessions (%zu/%zu)\n",
                 done.size(), fleet.sessions.size());
    std::exit(1);
  }
  if (stats_out != nullptr) *stats_out = bp.stats();
  // Results arrive in flush order; index by ticket for session order.
  std::vector<BatchPrediction> by_session(fleet.sessions.size());
  for (BatchPrediction& p : done) {
    by_session[p.ticket] = std::move(p);
  }
  return by_session;
}

ArmResult RunBatchedArm(const FleetConfig& cfg, const Fleet& fleet,
                        const ArmSystem& a, const char* label) {
  BatchPredictorStats bstats;
  std::vector<BatchPrediction> preds =
      PredictFleet(cfg, fleet, a.system.get(), cfg.batch_rows, &bstats);
  std::vector<ConcurrentQuery> batch(fleet.sessions.size());
  for (size_t i = 0; i < fleet.sessions.size(); ++i) {
    const FleetSessionSpec& s = fleet.sessions[i];
    ConcurrentQuery cq;
    cq.trace = &fleet.Query(i).trace;
    cq.prefetch_pages = std::move(preds[i].pages);
    cq.arrival_us = s.arrival_us;
    cq.prefetch_options = SessionOptions(cfg, s);
    // Honest batching cost: the session cannot start prefetching before
    // its window flushed, so the wait is charged to its start delay.
    cq.prefetch_options.start_delay_us +=
        preds[i].ready_us - s.arrival_us;
    cq.prefetch_options.governor = a.system->governor();
    cq.planned = preds[i].planned;
    batch[i] = std::move(cq);
  }
  ArmResult arm;
  arm.bstats = bstats;
  arm.batch =
      ReplayConcurrent(batch, GovernedOptions(cfg, a.system.get()), a.env.get());
  arm.rows_per_forward =
      bstats.model_batches == 0
          ? 0.0
          : static_cast<double>(bstats.forward_rows) /
                static_cast<double>(bstats.model_batches);
  FinishArm(&arm, a, label);
  return arm;
}

void WriteBatchStats(bench::JsonWriter& json, const BatchPredictorStats& b,
                     double rows_per_forward) {
  json.Key("batch_predictor").BeginObject();
  json.Field("submitted", b.submitted);
  json.Field("served_from_cache", b.served_from_cache);
  json.Field("deduped", b.deduped);
  json.Field("fanned_out", b.fanned_out);
  json.Field("unmatched", b.unmatched);
  json.Field("degraded", b.degraded);
  json.Field("cached_only_misses", b.cached_only_misses);
  json.Field("flushes", b.flushes);
  json.Field("size_flushes", b.size_flushes);
  json.Field("deadline_flushes", b.deadline_flushes);
  json.Field("final_flushes", b.final_flushes);
  json.Field("shed_windows", b.shed_windows);
  json.Field("forward_rows", b.forward_rows);
  json.Field("model_batches", b.model_batches);
  json.Field("rows_per_forward", rows_per_forward);
  json.EndObject();
}

void WriteArmJson(bench::JsonWriter& json, const char* name,
                  const ArmResult& arm, bool batched) {
  json.Key(name).BeginObject();
  json.Field("completed", arm.completed);
  json.Field("rejected", arm.rejected);
  json.Field("peak_concurrency", static_cast<uint64_t>(arm.peak_concurrency));
  json.Field("makespan_us", static_cast<uint64_t>(arm.batch.makespan_us));
  json.Field("total_query_us",
             static_cast<uint64_t>(arm.batch.total_query_us));
  json.Field("p50_us", arm.p50);
  json.Field("p90_us", arm.p90);
  json.Field("p99_us", arm.p99);
  json.Field("max_us", arm.max);
  json.Key("admission").BeginObject();
  json.Field("admitted_immediately", arm.batch.admission.admitted_immediately);
  json.Field("admitted_after_wait", arm.batch.admission.admitted_after_wait);
  json.Field("rejected", arm.batch.admission.rejected);
  json.Field("deadline_stops", arm.batch.admission.deadline_stops);
  json.Field("max_queue_wait_us",
             static_cast<uint64_t>(arm.batch.admission.max_queue_wait_us));
  json.EndObject();
  json.Key("governor").BeginObject();
  json.Field("pin_grants", arm.governor.pin_grants);
  json.Field("pin_denials", arm.governor.pin_denials);
  json.Field("pages_shed", arm.governor.pages_shed);
  json.Field("rung_degrades", arm.governor.rung_degrades);
  json.Field("rung_recoveries", arm.governor.rung_recoveries);
  json.EndObject();
  json.Key("prediction_cache").BeginObject();
  json.Field("hits", arm.cache.hits);
  json.Field("misses", arm.cache.misses);
  json.Field("evictions", arm.cache.evictions);
  json.Field("dedup_joins", arm.cache.dedup_joins);
  json.Field("fanouts", arm.cache.fanouts);
  json.EndObject();
  if (batched) WriteBatchStats(json, arm.bstats, arm.rows_per_forward);
  json.EndObject();
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) {
  using namespace pythia;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  FleetConfig cfg;
  if (smoke) {
    cfg.scale_factor = 15;
    cfg.num_queries = 60;
    cfg.epochs = 8;
    cfg.num_sessions = 160;
    cfg.key18 = "fleet_t18_sf15_q60_e8";
    cfg.key91 = "fleet_t91_sf15_q60_e8";
  } else {
    cfg.key18 = "fleet_t18_sf100_q300";
    cfg.key91 = "fleet_t91_sf100_q300";
  }

  std::unique_ptr<Database> db = bench::Dsb(cfg.scale_factor);
  const Workload wl18 = bench::MakeWorkload(*db, TemplateId::kDsb18,
                                            cfg.num_queries);
  const Workload wl91 = bench::MakeWorkload(*db, TemplateId::kDsb91,
                                            cfg.num_queries);
  PredictorOptions popts = bench::DefaultPredictor();
  popts.epochs = cfg.epochs;
  WorkloadModel m18 = bench::CachedModel(*db, wl18, popts, cfg.key18);
  WorkloadModel m91 = bench::CachedModel(*db, wl91, popts, cfg.key91);

  // Calibrate gaps and deadlines from an uncontended solo run (virtual
  // time, exact and deterministic).
  {
    ArmSystem solo = MakeSystem(wl18, m18, wl91, m91, /*governed=*/false);
    QueryRunMetrics pm;
    const std::vector<PageId> plan = solo.system->PrefetchPlan(
        wl18.queries[0], RunMode::kPythia, &pm);
    PrefetcherOptions sp;
    sp.start_delay_us = cfg.base_start_delay_us;
    const ReplayResult r =
        ReplayQuery(wl18.queries[0].trace, plan, sp, solo.env.get());
    if (!r.status.ok()) {
      std::fprintf(stderr, "solo replay failed: %s\n",
                   r.status.ToString().c_str());
      return 1;
    }
    cfg.solo_us = r.elapsed_us;
  }
  // 2x oversubscription against max_active slots, like bench_overload.
  cfg.mean_gap_us = std::max<SimTime>(1, cfg.solo_us / (2 * cfg.max_active));
  cfg.deadline_us = 2 * cfg.solo_us;
  cfg.burst_gap_us = std::max<SimTime>(1, 2 * cfg.solo_us);

  Fleet poisson;
  poisson.workloads[0] = &wl18;
  poisson.workloads[1] = &wl91;
  Fleet bursty = poisson;
  const std::vector<size_t> population = {wl18.queries.size(),
                                          wl91.queries.size()};
  poisson.sessions = GenerateFleetArrivals(
      population, MakeFleetOptions(cfg, ArrivalProcess::kPoisson));
  bursty.sessions = GenerateFleetArrivals(
      population, MakeFleetOptions(cfg, ArrivalProcess::kBursty));

  // --- Bit-identity: batched == sequential at every batch size -----------
  // Ungoverned fresh systems, so every session plans at full-neural and the
  // comparison covers the actual forward passes, not degraded shortcuts.
  std::vector<std::vector<PageId>> sequential_plans;
  {
    ArmSystem ref = MakeSystem(wl18, m18, wl91, m91, /*governed=*/false);
    for (size_t i = 0; i < bursty.sessions.size(); ++i) {
      QueryRunMetrics pm;
      sequential_plans.push_back(ref.system->PrefetchPlan(
          bursty.Query(i), RunMode::kPythia, &pm));
    }
  }
  const size_t kBatchSizes[] = {1, 4, 32, 128};
  for (size_t rows : kBatchSizes) {
    ArmSystem probe = MakeSystem(wl18, m18, wl91, m91, /*governed=*/false);
    std::vector<BatchPrediction> preds =
        PredictFleet(cfg, bursty, probe.system.get(), rows, nullptr);
    for (size_t i = 0; i < bursty.sessions.size(); ++i) {
      if (preds[i].pages != sequential_plans[i]) {
        std::fprintf(stderr,
                     "FATAL: batch size %zu: session %zu pages differ from "
                     "the sequential path\n",
                     rows, i);
        return 1;
      }
    }
  }

  // --- The four replayed arms --------------------------------------------
  auto run_pair = [&](const Fleet& fleet, const char* seq_label,
                      const char* bat_label) {
    ArmSystem seq_sys = MakeSystem(wl18, m18, wl91, m91, /*governed=*/true);
    ArmResult seq = RunSequentialArm(cfg, fleet, seq_sys, seq_label);
    ArmSystem bat_sys = MakeSystem(wl18, m18, wl91, m91, /*governed=*/true);
    ArmResult bat = RunBatchedArm(cfg, fleet, bat_sys, bat_label);
    return std::make_pair(std::move(seq), std::move(bat));
  };
  auto [poisson_seq, poisson_bat] =
      run_pair(poisson, "poisson-sequential", "poisson-batched");
  auto [bursty_seq, bursty_bat] =
      run_pair(bursty, "bursty-sequential", "bursty-batched");

  // --- Acceptance self-checks --------------------------------------------
  const size_t peak = std::max(
      {poisson_seq.peak_concurrency, poisson_bat.peak_concurrency,
       bursty_seq.peak_concurrency, bursty_bat.peak_concurrency});
  if (peak < 50) {
    std::fprintf(stderr, "FATAL: peak concurrency %zu < 50 sessions\n", peak);
    return 1;
  }
  if (bursty_bat.rows_per_forward < 8.0) {
    std::fprintf(stderr,
                 "FATAL: bursty mean rows per forward %.2f < 8 — batching "
                 "is not amortizing\n",
                 bursty_bat.rows_per_forward);
    return 1;
  }
  if (bursty_bat.bstats.deduped == 0 || bursty_bat.bstats.fanned_out == 0) {
    std::fprintf(stderr, "FATAL: single-flight dedupe never engaged\n");
    return 1;
  }
  const double p99_budget = 16.0 * static_cast<double>(cfg.solo_us);
  for (const ArmResult* arm : {&poisson_bat, &bursty_bat}) {
    if (arm->p99 > p99_budget) {
      std::fprintf(stderr,
                   "FATAL: batched p99 %.0fus exceeds budget %.0fus\n",
                   arm->p99, p99_budget);
      return 1;
    }
  }

  auto build_json = [&](const ArmResult& ps, const ArmResult& pb,
                        const ArmResult& bs, const ArmResult& bb) {
    bench::JsonWriter json;
    json.BeginObject();
    json.Field("bench", "fleet");
    json.Field("smoke", smoke);
    json.Field("scale_factor", cfg.scale_factor);
    json.Field("num_queries_per_template", cfg.num_queries);
    json.Field("num_sessions", static_cast<uint64_t>(cfg.num_sessions));
    json.Field("max_active", static_cast<uint64_t>(cfg.max_active));
    json.Field("batch_rows", static_cast<uint64_t>(cfg.batch_rows));
    json.Field("flush_deadline_us",
               static_cast<uint64_t>(cfg.flush_deadline_us));
    json.Field("fleet_seed", cfg.fleet_seed);
    json.Field("solo_us", static_cast<uint64_t>(cfg.solo_us));
    json.Field("mean_gap_us", static_cast<uint64_t>(cfg.mean_gap_us));
    json.Field("deadline_us", static_cast<uint64_t>(cfg.deadline_us));
    json.Field("burst_gap_us", static_cast<uint64_t>(cfg.burst_gap_us));
    json.Field("p99_budget_us", p99_budget);
    json.Key("equivalence").BeginObject();
    json.Key("batch_sizes").BeginArray();
    for (size_t rows : kBatchSizes) json.Uint(rows);
    json.EndArray();
    json.Field("bit_identical", true);  // enforced above, exit 1 otherwise
    json.EndObject();
    WriteArmJson(json, "poisson_sequential", ps, false);
    WriteArmJson(json, "poisson_batched", pb, true);
    WriteArmJson(json, "bursty_sequential", bs, false);
    WriteArmJson(json, "bursty_batched", bb, true);
    json.EndObject();
    return json;
  };
  const bench::JsonWriter json =
      build_json(poisson_seq, poisson_bat, bursty_seq, bursty_bat);

  // Determinism: rerun the bursty batched arm from identical seeds; the
  // full payload must reproduce byte for byte.
  {
    ArmSystem rerun_sys = MakeSystem(wl18, m18, wl91, m91, /*governed=*/true);
    ArmResult rerun = RunBatchedArm(cfg, bursty, rerun_sys, "bursty-rerun");
    if (build_json(poisson_seq, poisson_bat, bursty_seq, rerun).str() !=
        json.str()) {
      std::fprintf(stderr, "FATAL: same-seed rerun is not byte-identical\n");
      return 1;
    }
  }

  TablePrinter table({"arm", "completed", "peak", "p50 (ms)", "p99 (ms)",
                      "makespan (ms)", "cache hits", "deduped",
                      "rows/forward"});
  auto row = [&](const char* name, const ArmResult& arm, bool batched) {
    table.AddRow({name, std::to_string(arm.completed),
                  std::to_string(arm.peak_concurrency),
                  TablePrinter::Num(arm.p50 / 1000.0, 1),
                  TablePrinter::Num(arm.p99 / 1000.0, 1),
                  TablePrinter::Num(arm.batch.makespan_us / 1000.0, 1),
                  std::to_string(arm.cache.hits),
                  batched ? std::to_string(arm.bstats.deduped) : "-",
                  batched ? TablePrinter::Num(arm.rows_per_forward, 1) : "-"});
  };
  std::printf("=== Fleet: %zu sessions, 2 templates, Zipf popularity, "
              "max_active=%zu, batch window %zu rows / %llu us ===\n",
              cfg.num_sessions, cfg.max_active, cfg.batch_rows,
              static_cast<unsigned long long>(cfg.flush_deadline_us));
  row("poisson-sequential", poisson_seq, false);
  row("poisson-batched", poisson_bat, true);
  row("bursty-sequential", bursty_seq, false);
  row("bursty-batched", bursty_bat, true);
  table.Print();
  std::printf("\nall checks passed: batched == sequential bit-identical at "
              "batch sizes 1/4/32/128, peak concurrency %zu >= 50, bursty "
              "rows/forward %.1f >= 8, batched p99 %.1fms <= %.1fms budget, "
              "same-seed rerun byte-identical\n",
              peak, bursty_bat.rows_per_forward, bursty_bat.p99 / 1000.0,
              p99_budget / 1000.0);

  if (!json.WriteToFile("BENCH_fleet.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_fleet.json\n");
    return 1;
  }
  std::printf("wrote BENCH_fleet.json\n");
  return 0;
}
