// Overload chaos/soak harness: concurrent query load at 2x oversubscription
// with seeded fault injection (transient errors + tail-latency spikes + AIO
// stalls) and a deliberately mispredicting "model", replayed with and
// without the overload-protection stack (PrefetchGovernor + admission
// control + deadline budgets).
//
// Self-checking, exit 1 on violation:
//  - no pin leaks: buffer-pool pins and the governor's pin ledger are zero
//    after every batch;
//  - no starvation: every admitted query completes with OK status (rejected
//    queries are accounted, never silently dropped);
//  - bounded tail: governed p99 virtual latency stays under a fixed budget
//    relative to the uncontended solo runtime, and no worse than the
//    ungoverned arm's p99;
//  - graceful degradation is observable: under this load the ladder must
//    actually move (rung degrades > 0) and speculative work must actually
//    be shed or denied;
//  - determinism: the governed arm runs twice from identical seeds and the
//    full JSON payloads (every counter, every latency) must be
//    byte-identical.
//
// Results land in BENCH_overload.json. `--smoke` shrinks the workload for
// the CI chaos-soak arm: same checks, seconds not minutes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/governor.h"
#include "core/replay.h"
#include "util/metrics.h"
#include "util/metrics_registry.h"
#include "util/rng.h"
#include "util/table_printer.h"

#include "bench/json_writer.h"

namespace pythia {
namespace {

struct BenchQuery {
  QueryTrace trace;
  std::vector<PageId> prefetch;
};

struct OverloadConfig {
  size_t num_queries = 32;
  size_t accesses_per_query = 4000;
  size_t max_active = 4;        // 2x oversubscription: ~8 overlapping
  size_t queue_limit = 8;
  SimTime deadline_us = 0;      // filled from solo runtime
  SimTime mean_gap_us = 0;      // filled from solo runtime
  double mispredict_fraction = 0.5;
  uint64_t seed = 20260805;
};

// Deterministic synthetic workload: sequential runs interleaved with random
// probes. The "model" predicts every probe but `mispredict_fraction` of its
// predictions point at pages the query never touches — those prefetches pin
// frames until shed/timed out, which is exactly the cache-polluting
// behaviour SeLeP/GrASP warn about and the governor exists to contain.
std::vector<BenchQuery> MakeWorkload(const OverloadConfig& cfg) {
  std::vector<BenchQuery> queries;
  Pcg32 rng(cfg.seed, 0x0f10);
  queries.reserve(cfg.num_queries);
  for (size_t q = 0; q < cfg.num_queries; ++q) {
    BenchQuery bq;
    const ObjectId heap = 1 + static_cast<ObjectId>(q % 4);
    uint32_t seq_page = rng.UniformU32(1000);
    for (size_t a = 0; a < cfg.accesses_per_query; ++a) {
      PageAccess access;
      access.cpu_tuples_before = 20 + rng.UniformU32(30);
      if (a % 4 == 3) {
        access.page = PageId{7, rng.UniformU32(200000)};
        access.sequential = false;
        if (rng.UniformDouble() < cfg.mispredict_fraction) {
          // Misprediction: a page nobody will ever fetch (distinct object).
          bq.prefetch.push_back(PageId{9, rng.UniformU32(200000)});
        } else {
          bq.prefetch.push_back(access.page);
        }
      } else {
        access.page = PageId{heap, seq_page++};
        access.sequential = true;
      }
      bq.trace.accesses.push_back(access);
    }
    queries.push_back(std::move(bq));
  }
  return queries;
}

SimOptions ChaosSim(uint64_t seed) {
  SimOptions sim;
  sim.buffer_pages = 512;   // small pool: concurrent sessions must contend
  sim.os_cache_pages = 4096;
  sim.io_channels = 4;
  sim.faults.transient_error_prob = 0.002;
  sim.faults.tail_latency_prob = 0.01;
  sim.faults.tail_latency_min_mult = 10.0;
  sim.faults.tail_latency_max_mult = 40.0;
  sim.faults.aio_stall_prob = 0.005;
  sim.faults.aio_stall_us = 20000;
  sim.faults.seed = seed;
  return sim;
}

struct ArmResult {
  ConcurrentResult batch;
  GovernorStats governor;
  size_t rung_served[kNumDegradationRungs] = {0, 0, 0, 0};
  std::vector<double> latencies_us;  // admitted queries only
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
  uint64_t completed = 0, rejected = 0;
};

ArmResult RunArm(const std::vector<BenchQuery>& workload,
                 const OverloadConfig& cfg, bool governed) {
  SimEnvironment env(ChaosSim(cfg.seed));
  GovernorOptions gopts;
  gopts.max_pinned_pages = 192;  // well under what 8 greedy sessions want
  gopts.max_outstanding_aio = 16;
  PrefetchGovernor governor(gopts, &env.pool(), &env.io(), &env.os_cache());

  std::vector<ConcurrentQuery> batch;
  SimTime arrival = 0;
  Pcg32 arrivals_rng(cfg.seed, 0xa221);
  for (size_t i = 0; i < workload.size(); ++i) {
    ConcurrentQuery c;
    c.trace = &workload[i].trace;
    c.prefetch_pages = workload[i].prefetch;
    c.arrival_us = arrival;
    c.prefetch_options.start_delay_us = 500;
    c.prefetch_options.readahead_window = 64;
    c.prefetch_options.priority = static_cast<int>(i % 3);  // shed victims
    arrival += cfg.mean_gap_us / 2 +
               arrivals_rng.UniformU32(
                   static_cast<uint32_t>(cfg.mean_gap_us) + 1);
    batch.push_back(std::move(c));
  }

  ConcurrentOptions copts;
  if (governed) {
    copts.governor = &governor;
    copts.max_active_queries = cfg.max_active;
    copts.admission_queue_limit = cfg.queue_limit;
    copts.default_deadline_us = cfg.deadline_us;
  }

  ArmResult arm;
  arm.batch = ReplayConcurrent(batch, copts, &env);
  arm.governor = governor.stats();

  // Pin-leak check covers both ledgers: every admitted query finished, so
  // nothing in the pool may still be pinned and the governor's token count
  // must be back to zero.
  if (env.pool().pinned_frames() != 0 || governor.pinned_pages() != 0) {
    std::fprintf(stderr,
                 "FATAL: pin leak (%s): pool=%zu governor=%zu\n",
                 governed ? "governed" : "ungoverned",
                 env.pool().pinned_frames(), governor.pinned_pages());
    std::exit(1);
  }

  for (size_t i = 0; i < arm.batch.queries.size(); ++i) {
    const QueryRunMetrics& m = arm.batch.queries[i];
    if (m.status.code() == StatusCode::kResourceExhausted) {
      ++arm.rejected;
      continue;
    }
    if (!m.status.ok()) {
      std::fprintf(stderr, "FATAL: admitted query %zu did not complete: %s\n",
                   i, m.status.ToString().c_str());
      std::exit(1);
    }
    ++arm.completed;
    ++arm.rung_served[static_cast<int>(m.rung)];
    arm.latencies_us.push_back(static_cast<double>(m.elapsed_us));
  }
  if (arm.rejected != arm.batch.admission.rejected) {
    std::fprintf(stderr, "FATAL: rejection accounting mismatch\n");
    std::exit(1);
  }

  std::sort(arm.latencies_us.begin(), arm.latencies_us.end());
  arm.p50 = Quantile(arm.latencies_us, 0.50);
  arm.p90 = Quantile(arm.latencies_us, 0.90);
  arm.p99 = Quantile(arm.latencies_us, 0.99);
  arm.max = arm.latencies_us.empty() ? 0.0 : arm.latencies_us.back();
  return arm;
}

void WriteArmJson(bench::JsonWriter& json, const char* name,
                  const ArmResult& arm) {
  json.Key(name).BeginObject();
  json.Field("completed", arm.completed);
  json.Field("rejected", arm.rejected);
  json.Field("makespan_us", static_cast<uint64_t>(arm.batch.makespan_us));
  json.Field("total_query_us",
             static_cast<uint64_t>(arm.batch.total_query_us));
  json.Field("p50_us", arm.p50);
  json.Field("p90_us", arm.p90);
  json.Field("p99_us", arm.p99);
  json.Field("max_us", arm.max);
  json.Key("admission").BeginObject();
  json.Field("admitted_immediately", arm.batch.admission.admitted_immediately);
  json.Field("admitted_after_wait", arm.batch.admission.admitted_after_wait);
  json.Field("rejected", arm.batch.admission.rejected);
  json.Field("deadline_stops", arm.batch.admission.deadline_stops);
  json.Field("max_queue_wait_us",
             static_cast<uint64_t>(arm.batch.admission.max_queue_wait_us));
  json.EndObject();
  json.Key("governor").BeginObject();
  json.Field("pin_grants", arm.governor.pin_grants);
  json.Field("pin_denials", arm.governor.pin_denials);
  json.Field("aio_deferrals", arm.governor.aio_deferrals);
  json.Field("shed_events", arm.governor.shed_events);
  json.Field("pages_shed", arm.governor.pages_shed);
  json.Field("rung_degrades", arm.governor.rung_degrades);
  json.Field("rung_recoveries", arm.governor.rung_recoveries);
  json.EndObject();
  json.Key("rung_served").BeginObject();
  for (int r = 0; r < kNumDegradationRungs; ++r) {
    json.Field(DegradationRungName(static_cast<DegradationRung>(r)),
               static_cast<uint64_t>(arm.rung_served[r]));
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) {
  using namespace pythia;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  OverloadConfig cfg;
  cfg.num_queries = smoke ? 16 : 32;
  cfg.accesses_per_query = smoke ? 2000 : 4000;

  const std::vector<BenchQuery> workload = MakeWorkload(cfg);

  // Calibrate the deadline and arrival rate from an uncontended solo run of
  // the first query (virtual time, so this is exact and deterministic).
  SimTime solo_us = 0;
  {
    SimEnvironment env(ChaosSim(cfg.seed));
    PrefetcherOptions popts;
    popts.start_delay_us = 500;
    const ReplayResult solo =
        ReplayQuery(workload[0].trace, workload[0].prefetch, popts, &env);
    if (!solo.status.ok()) {
      std::fprintf(stderr, "solo replay failed: %s\n",
                   solo.status.ToString().c_str());
      return 1;
    }
    solo_us = solo.elapsed_us;
  }
  // 2x oversubscription: with max_active slots, arrivals come at ~2x the
  // rate the slots can drain (mean gap = solo / (2 * max_active)).
  cfg.mean_gap_us = std::max<SimTime>(1, solo_us / (2 * cfg.max_active));
  // Tight enough that the slowest admitted queries hit it (making the
  // deadline rung observable), loose enough that typical queries do not.
  cfg.deadline_us = (3 * solo_us) / 2;

  const ArmResult ungoverned = RunArm(workload, cfg, /*governed=*/false);
  const ArmResult governed = RunArm(workload, cfg, /*governed=*/true);

  // Graceful degradation must be observable under this load, not merely
  // available: the ladder moved and speculative work was shed or denied.
  if (governed.governor.rung_degrades == 0) {
    std::fprintf(stderr, "FATAL: ladder never degraded under 2x load\n");
    return 1;
  }
  if (governed.governor.pages_shed == 0 &&
      governed.governor.pin_denials == 0 &&
      governed.governor.aio_deferrals == 0) {
    std::fprintf(stderr, "FATAL: governor never shed or denied work\n");
    return 1;
  }
  size_t degraded_served = 0;
  for (int r = 1; r < kNumDegradationRungs; ++r) {
    degraded_served += governed.rung_served[r];
  }
  if (degraded_served == 0) {
    std::fprintf(stderr, "FATAL: no query reports a degraded rung\n");
    return 1;
  }

  // Bounded tail: the governed p99 stays within a fixed multiple of the
  // uncontended solo runtime, and the protection never makes the tail worse
  // than letting sessions collide freely.
  const double p99_budget = 16.0 * static_cast<double>(solo_us);
  if (governed.p99 > p99_budget) {
    std::fprintf(stderr, "FATAL: governed p99 %.0fus exceeds budget %.0fus\n",
                 governed.p99, p99_budget);
    return 1;
  }
  if (governed.p99 > ungoverned.p99) {
    std::fprintf(stderr,
                 "FATAL: governed p99 %.0fus worse than ungoverned %.0fus\n",
                 governed.p99, ungoverned.p99);
    return 1;
  }

  auto build_json = [&](const ArmResult& ug, const ArmResult& gv) {
    bench::JsonWriter json;
    json.BeginObject();
    json.Field("bench", "overload");
    json.Field("smoke", smoke);
    json.Field("seed", cfg.seed);
    json.Field("num_queries", static_cast<uint64_t>(cfg.num_queries));
    json.Field("accesses_per_query",
               static_cast<uint64_t>(cfg.accesses_per_query));
    json.Field("max_active", static_cast<uint64_t>(cfg.max_active));
    json.Field("queue_limit", static_cast<uint64_t>(cfg.queue_limit));
    json.Field("deadline_us", static_cast<uint64_t>(cfg.deadline_us));
    json.Field("mean_gap_us", static_cast<uint64_t>(cfg.mean_gap_us));
    json.Field("mispredict_fraction", cfg.mispredict_fraction);
    json.Field("solo_us", static_cast<uint64_t>(solo_us));
    WriteArmJson(json, "ungoverned", ug);
    WriteArmJson(json, "governed", gv);
    json.EndObject();
    return json;
  };
  const bench::JsonWriter json = build_json(ungoverned, governed);

  // Determinism: rerun the governed arm from the same seeds; every number
  // in the payload must reproduce exactly.
  const ArmResult governed2 = RunArm(workload, cfg, /*governed=*/true);
  if (build_json(ungoverned, governed2).str() != json.str()) {
    std::fprintf(stderr, "FATAL: same-seed rerun is not byte-identical\n");
    return 1;
  }

  TablePrinter table({"arm", "completed", "rejected", "p50 (ms)", "p99 (ms)",
                      "makespan (ms)", "degrades", "pages shed",
                      "deadline stops"});
  auto row = [&](const char* name, const ArmResult& arm) {
    table.AddRow({name, std::to_string(arm.completed),
                  std::to_string(arm.rejected),
                  TablePrinter::Num(arm.p50 / 1000.0, 1),
                  TablePrinter::Num(arm.p99 / 1000.0, 1),
                  TablePrinter::Num(arm.batch.makespan_us / 1000.0, 1),
                  std::to_string(arm.governor.rung_degrades),
                  std::to_string(arm.governor.pages_shed),
                  std::to_string(arm.batch.admission.deadline_stops)});
  };
  std::printf("=== Overload chaos/soak: %zu queries, %zux oversubscribed, "
              "faults+spikes+stalls, %.0f%% mispredicted ===\n",
              cfg.num_queries, size_t{2}, cfg.mispredict_fraction * 100);
  row("ungoverned", ungoverned);
  row("governed", governed);
  table.Print();
  std::printf("\nall checks passed: no pin leaks, every admitted query "
              "completed, governed p99 bounded (%.1fms <= %.1fms budget), "
              "same-seed rerun byte-identical\n",
              governed.p99 / 1000.0, p99_budget / 1000.0);

  if (!json.WriteToFile("BENCH_overload.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_overload.json\n");
    return 1;
  }
  std::printf("wrote BENCH_overload.json\n");
  return 0;
}
