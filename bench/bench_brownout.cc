// Gray-failure (brownout) resilience sweep: hedged vs unhedged reads.
//
// Fail-stop faults (errors, corruption) were covered by bench_fault_tolerance
// and bench_integrity; this bench covers the failures that DON'T fail — a
// storage channel that silently serves every read N times slower. One channel
// of the striped cache is browned out over a severity x duration grid while a
// foreground workload keeps reading through it, and the hedged arm (per-
// channel health tracking + deadline hedges, storage/channel_health.h) is
// compared against the unhedged arm on foreground p99 over the brownout-
// active span. The victim channel carries ~3% of the traffic, so the 5%
// global hedge budget covers it — exactly the regime hedging is for: a rare-
// but-slow channel poisoning the tail of an otherwise healthy workload.
//
// Self-checking, exit 1 on violation:
//  - efficacy: at severity 10x (longest duration), hedged foreground p99
//    must be at least 2x better than unhedged;
//  - budget conservation: in every hedged arm, hedges_issued <=
//    budget_fraction x reads_observed, and every issued hedge is accounted
//    won or wasted;
//  - injection accounting: each browned arm injects exactly `duration`
//    brownout reads, all of them on the victim channel;
//  - determinism: the severity-10 hedged arm reruns bit-identical (p99,
//    virtual elapsed, hedge counters);
//  - healthy-path overhead: with no brownout, enabling health tracking +
//    hedging must not change virtual elapsed by more than 2% (it should
//    change it by exactly zero: no deadline is ever exceeded);
//  - breaker timeline: with per-channel breakers armed, a finite brownout
//    must produce at least one quarantine AND at least one reinstatement
//    after the channel recovers.
//
// Results land in BENCH_brownout.json. `--smoke` shrinks the sweep for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/channel_breaker.h"
#include "core/replay.h"
#include "storage/channel_health.h"
#include "util/table_printer.h"

#include "bench/json_writer.h"

namespace pythia {
namespace {

struct BrownoutConfig {
  size_t channels = 4;
  size_t warmup_accesses = 1024;  // fills every channel's health window
  size_t tail_accesses = 1024;    // post-brownout recovery runway
  size_t victim_period = 32;      // 1 in 32 accesses hits the victim channel
  uint64_t window_samples = 8;
  double hedge_budget_fraction = 0.05;
  std::vector<double> severities = {2.0, 5.0, 10.0};
  std::vector<uint64_t> durations = {32, 128};  // in victim-channel reads
  uint64_t seed = 20260808;
};

SimOptions BaseSim(const BrownoutConfig& cfg, bool health, bool hedging) {
  SimOptions sim;
  sim.buffer_pages = 64;
  sim.os_cache_pages = 64;
  sim.os_readahead_pages = 0;
  sim.storage_channels = cfg.channels;
  sim.channel_health.enabled = health;
  sim.channel_health.window_samples = cfg.window_samples;
  sim.channel_health.hedging_enabled = hedging;
  sim.channel_health.hedge_budget_fraction = cfg.hedge_budget_fraction;
  return sim;
}

SimOptions BrownedSim(const BrownoutConfig& cfg, bool hedging, double severity,
                      uint64_t duration) {
  SimOptions sim = BaseSim(cfg, /*health=*/true, hedging);
  if (severity > 1.0) {
    sim.faults.brownout_latency_mult = severity;
    // The brownout starts once the victim's own device-read ordinal passes
    // its warmup share: the health window is warm when the slowness begins.
    sim.faults.brownout_start_read = cfg.warmup_accesses / cfg.victim_period;
    sim.faults.brownout_duration_reads = duration;
    sim.faults.seed = cfg.seed;
    sim.brownout_channel = 0;  // the victim; scoping confines injection
  }
  return sim;
}

// Every access is a cold 900us random device read: unique stride-3 pages
// (defeats both caches and sequential detection), one object per channel so
// the stripe mapping is explicit. Every `victim_period`-th access goes to
// the victim channel (channel 0); the rest round-robin the healthy ones.
std::vector<PageId> MakeTrace(const BrownoutConfig& cfg, size_t accesses) {
  SimEnvironment probe(BaseSim(cfg, false, false));
  ObjectId victim_obj = 0;
  std::vector<ObjectId> healthy;
  std::vector<bool> covered(cfg.channels, false);
  for (ObjectId obj = 1; healthy.size() < cfg.channels - 1 || victim_obj == 0;
       ++obj) {
    const size_t c = probe.os_cache().ChannelOf(PageId{obj, 0});
    if (c == 0) {
      if (victim_obj == 0) victim_obj = obj;
    } else if (!covered[c]) {
      covered[c] = true;
      healthy.push_back(obj);
    }
  }
  std::vector<PageId> trace;
  trace.reserve(accesses);
  std::vector<uint32_t> next_page(cfg.channels + healthy.size(), 0);
  size_t healthy_rr = 0;
  for (size_t i = 0; i < accesses; ++i) {
    ObjectId obj;
    size_t slot;
    if (i % cfg.victim_period == cfg.victim_period - 1) {
      obj = victim_obj;
      slot = 0;
    } else {
      slot = 1 + healthy_rr;
      obj = healthy[healthy_rr];
      healthy_rr = (healthy_rr + 1) % healthy.size();
    }
    trace.push_back(PageId{obj, 3 * next_page[slot]++});
  }
  return trace;
}

struct ArmOutcome {
  double p99_us = 0.0;        // foreground p99 over the brownout-active span
  uint64_t span_accesses = 0;
  uint64_t browned_reads = 0;  // injector-tagged reads inside the span
  uint64_t elapsed_us = 0;     // total virtual time, whole run
  double wall_ms = 0.0;
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;
  uint64_t hedges_wasted = 0;
  uint64_t hedges_denied = 0;
  uint64_t reads_observed = 0;
  uint64_t quarantines = 0;
  uint64_t reinstatements = 0;
};

double Percentile(std::vector<SimTime> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return static_cast<double>(v[idx]);
}

// Replays the trace access by access through the buffer pool, tagging each
// access that consumed a brownout-injected device read via the victim
// injector's counter delta. Device-read ordinals are identical across the
// hedged and unhedged arms (a hedge never touches the victim's injector), so
// both arms tag the same span and the p99s compare like for like.
ArmOutcome RunArm(const SimOptions& sim, const std::vector<PageId>& trace,
                  bool drive_breakers) {
  SimEnvironment env(sim);
  const FaultInjector* victim =
      env.os_cache().channel_fault_injector(0);
  ArmOutcome out;
  std::vector<SimTime> latencies(trace.size(), 0);
  int64_t first_browned = -1, last_browned = -1;
  SimTime now = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < trace.size(); ++i) {
    const uint64_t before =
        victim != nullptr ? victim->stats().injected_brownout_reads : 0;
    const Result<FetchResult> r = env.pool().FetchPage(trace[i], now);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: fetch error at access %zu: %s\n", i,
                   r.status().ToString().c_str());
      std::exit(1);
    }
    now += r->latency_us;
    latencies[i] = r->latency_us;
    const uint64_t after =
        victim != nullptr ? victim->stats().injected_brownout_reads : 0;
    if (after > before) {
      ++out.browned_reads;
      if (first_browned < 0) first_browned = static_cast<int64_t>(i);
      last_browned = static_cast<int64_t>(i);
    }
    if (drive_breakers && env.channel_breakers() != nullptr) {
      // Stand-in for the prefetcher's admission check: one speculative-read
      // admission probe against the victim channel per foreground access.
      env.channel_breakers()->AllowSpeculative(0);
    }
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  out.elapsed_us = now;
  if (first_browned >= 0) {
    const std::vector<SimTime> span(
        latencies.begin() + first_browned,
        latencies.begin() + last_browned + 1);
    out.span_accesses = span.size();
    out.p99_us = Percentile(span, 0.99);
  } else {
    out.span_accesses = trace.size();
    out.p99_us = Percentile(latencies, 0.99);
  }
  if (env.channel_health() != nullptr) {
    const ChannelHealthCounters c = env.channel_health()->counters();
    out.hedges_issued = c.hedges_issued;
    out.hedges_won = c.hedges_won;
    out.hedges_wasted = c.hedges_wasted;
    out.hedges_denied = c.hedges_denied_budget;
    out.reads_observed = c.reads_observed;
    // Conservation gates: the budget is an invariant, not a hint.
    if (static_cast<double>(c.hedges_issued) >
        sim.channel_health.hedge_budget_fraction *
            static_cast<double>(c.reads_observed)) {
      std::fprintf(stderr,
                   "FAIL: hedge budget violated (issued=%llu reads=%llu "
                   "fraction=%.3f)\n",
                   static_cast<unsigned long long>(c.hedges_issued),
                   static_cast<unsigned long long>(c.reads_observed),
                   sim.channel_health.hedge_budget_fraction);
      std::exit(1);
    }
    if (c.hedges_issued != c.hedges_won + c.hedges_wasted) {
      std::fprintf(stderr, "FAIL: hedge accounting leak (issued=%llu "
                           "won=%llu wasted=%llu)\n",
                   static_cast<unsigned long long>(c.hedges_issued),
                   static_cast<unsigned long long>(c.hedges_won),
                   static_cast<unsigned long long>(c.hedges_wasted));
      std::exit(1);
    }
  }
  if (env.channel_breakers() != nullptr) {
    const ChannelBreakerStats s = env.channel_breakers()->stats();
    out.quarantines = s.quarantines + s.requarantines;
    out.reinstatements = s.reinstatements;
  }
  if (env.pool().pinned_frames() != 0) {
    std::fprintf(stderr, "FAIL: leaked pins\n");
    std::exit(1);
  }
  return out;
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) {
  using namespace pythia;
  using bench::JsonWriter;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  BrownoutConfig cfg;
  if (smoke) {
    cfg.severities = {10.0};
    cfg.durations = {32};
  }

  std::printf(
      "brownout bench: %zu channels, victim carries 1/%zu of reads, hedge "
      "budget %.0f%%%s\n",
      cfg.channels, cfg.victim_period, 100.0 * cfg.hedge_budget_fraction,
      smoke ? " [smoke]" : "");

  struct SweepRow {
    double severity;
    uint64_t duration;
    ArmOutcome unhedged, hedged;
  };
  std::vector<SweepRow> rows;
  double gate_speedup = 0.0;  // severity-10, longest-duration speedup

  for (double severity : cfg.severities) {
    for (uint64_t duration : cfg.durations) {
      const size_t accesses = cfg.warmup_accesses +
                              cfg.victim_period * duration +
                              cfg.tail_accesses;
      const std::vector<PageId> trace = MakeTrace(cfg, accesses);
      SweepRow row;
      row.severity = severity;
      row.duration = duration;
      row.unhedged = RunArm(BrownedSim(cfg, false, severity, duration), trace,
                            false);
      row.hedged = RunArm(BrownedSim(cfg, true, severity, duration), trace,
                          false);
      for (const ArmOutcome* arm : {&row.unhedged, &row.hedged}) {
        if (arm->browned_reads != duration) {
          std::fprintf(stderr,
                       "FAIL: injection accounting (severity=%.0f duration="
                       "%llu): tagged %llu browned reads\n",
                       severity, static_cast<unsigned long long>(duration),
                       static_cast<unsigned long long>(arm->browned_reads));
          return 1;
        }
      }
      if (severity == cfg.severities.back() &&
          duration == cfg.durations.back()) {
        gate_speedup = row.unhedged.p99_us / row.hedged.p99_us;
      }
      rows.push_back(row);
    }
  }

  // Determinism: the headline arm reruns bit-identical.
  {
    const uint64_t duration = cfg.durations.back();
    const double severity = cfg.severities.back();
    const size_t accesses = cfg.warmup_accesses +
                            cfg.victim_period * duration + cfg.tail_accesses;
    const std::vector<PageId> trace = MakeTrace(cfg, accesses);
    const SimOptions sim = BrownedSim(cfg, true, severity, duration);
    const ArmOutcome a = RunArm(sim, trace, false);
    const ArmOutcome b = RunArm(sim, trace, false);
    if (a.p99_us != b.p99_us || a.elapsed_us != b.elapsed_us ||
        a.hedges_issued != b.hedges_issued || a.hedges_won != b.hedges_won) {
      std::fprintf(stderr, "FAIL: hedged rerun not bit-identical\n");
      return 1;
    }
  }

  // Healthy-path overhead: no brownout, tracker+hedging on vs fully off.
  const size_t healthy_accesses = cfg.warmup_accesses + 2048;
  const std::vector<PageId> healthy_trace = MakeTrace(cfg, healthy_accesses);
  const ArmOutcome plain =
      RunArm(BaseSim(cfg, /*health=*/false, /*hedging=*/false), healthy_trace,
             false);
  const ArmOutcome tracked =
      RunArm(BaseSim(cfg, /*health=*/true, /*hedging=*/true), healthy_trace,
             false);
  const double overhead =
      static_cast<double>(tracked.elapsed_us) /
          static_cast<double>(plain.elapsed_us) -
      1.0;
  if (overhead > 0.02) {
    std::fprintf(stderr,
                 "FAIL: healthy-path virtual overhead %.2f%% > 2%% "
                 "(%llu -> %llu us)\n",
                 100.0 * overhead,
                 static_cast<unsigned long long>(plain.elapsed_us),
                 static_cast<unsigned long long>(tracked.elapsed_us));
    return 1;
  }
  if (tracked.hedges_issued != 0) {
    std::fprintf(stderr, "FAIL: %llu spurious hedges on the healthy path\n",
                 static_cast<unsigned long long>(tracked.hedges_issued));
    return 1;
  }

  // Breaker timeline: finite brownout with breakers armed must quarantine
  // the victim and reinstate it after recovery.
  const uint64_t breaker_duration = cfg.durations.back();
  const size_t breaker_accesses = cfg.warmup_accesses +
                                  cfg.victim_period * breaker_duration +
                                  cfg.tail_accesses;
  SimOptions breaker_sim =
      BrownedSim(cfg, true, cfg.severities.back(), breaker_duration);
  breaker_sim.channel_breakers = true;
  const ArmOutcome breaker =
      RunArm(breaker_sim, MakeTrace(cfg, breaker_accesses), true);
  if (breaker.quarantines < 1 || breaker.reinstatements < 1) {
    std::fprintf(stderr,
                 "FAIL: breaker timeline (quarantines=%llu "
                 "reinstatements=%llu)\n",
                 static_cast<unsigned long long>(breaker.quarantines),
                 static_cast<unsigned long long>(breaker.reinstatements));
    return 1;
  }

  TablePrinter table({"severity", "duration", "unhedged_p99", "hedged_p99",
                      "speedup", "hedges", "won", "denied"});
  for (const SweepRow& row : rows) {
    table.AddRow({TablePrinter::Num(row.severity, 0),
                  std::to_string(row.duration),
                  TablePrinter::Num(row.unhedged.p99_us, 0),
                  TablePrinter::Num(row.hedged.p99_us, 0),
                  TablePrinter::Num(row.unhedged.p99_us / row.hedged.p99_us, 2),
                  std::to_string(row.hedged.hedges_issued),
                  std::to_string(row.hedged.hedges_won),
                  std::to_string(row.hedged.hedges_denied)});
  }
  table.Print();
  std::printf("healthy-path virtual overhead: %.3f%%; breaker timeline: %llu "
              "quarantined, %llu reinstated\n",
              100.0 * overhead,
              static_cast<unsigned long long>(breaker.quarantines),
              static_cast<unsigned long long>(breaker.reinstatements));

  if (gate_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: severity-10 hedged p99 speedup %.2fx < 2x\n",
                 gate_speedup);
    return 1;
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "brownout");
  json.Field("smoke", smoke);
  json.Field("channels", static_cast<uint64_t>(cfg.channels));
  json.Field("victim_period", static_cast<uint64_t>(cfg.victim_period));
  json.Field("hedge_budget_fraction", cfg.hedge_budget_fraction);
  json.Key("sweep").BeginArray();
  for (const SweepRow& row : rows) {
    json.BeginObject();
    json.Field("severity", row.severity);
    json.Field("duration_reads", row.duration);
    json.Field("span_accesses", row.unhedged.span_accesses);
    json.Field("unhedged_p99_us", row.unhedged.p99_us);
    json.Field("hedged_p99_us", row.hedged.p99_us);
    json.Field("p99_speedup", row.unhedged.p99_us / row.hedged.p99_us);
    json.Field("unhedged_elapsed_us", row.unhedged.elapsed_us);
    json.Field("hedged_elapsed_us", row.hedged.elapsed_us);
    json.Field("hedges_issued", row.hedged.hedges_issued);
    json.Field("hedges_won", row.hedged.hedges_won);
    json.Field("hedges_wasted", row.hedged.hedges_wasted);
    json.Field("hedges_denied_by_budget", row.hedged.hedges_denied);
    json.Field("reads_observed", row.hedged.reads_observed);
    json.Field("unhedged_wall_ms", row.unhedged.wall_ms);
    json.Field("hedged_wall_ms", row.hedged.wall_ms);
    json.EndObject();
  }
  json.EndArray();
  json.Key("healthy_path").BeginObject();
  json.Field("plain_elapsed_us", plain.elapsed_us);
  json.Field("tracked_elapsed_us", tracked.elapsed_us);
  json.Field("virtual_overhead", overhead);
  json.Field("plain_wall_ms", plain.wall_ms);
  json.Field("tracked_wall_ms", tracked.wall_ms);
  json.EndObject();
  json.Key("breaker").BeginObject();
  json.Field("quarantines", breaker.quarantines);
  json.Field("reinstatements", breaker.reinstatements);
  json.Field("hedges_issued", breaker.hedges_issued);
  json.EndObject();
  json.Field("severity10_p99_speedup", gate_speedup);
  json.Field("deterministic", true);
  json.EndObject();
  if (!json.WriteToFile("BENCH_brownout.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_brownout.json\n");
    return 0;
  }
  std::printf("wrote BENCH_brownout.json\n");
  return 0;
}
