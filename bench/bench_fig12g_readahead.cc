// Figure 12g: readahead-window size R. Pythia keeps the next R blocks of
// the prefetch queue pinned in the buffer; larger windows prefetch further
// ahead but pin more memory. The paper sets the default to 1024 and finds
// gains grow with R but flatten past it.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  // Template 91 has the deepest prefetch queues, making R's effect visible.
  Workload workload = MakeWorkload(*db, TemplateId::kDsb91);
  WorkloadModel trained = CachedModel(*db, workload, DefaultPredictor(),
                                      "dsb_t91_default");
  (void)trained;

  TablePrinter table({"readahead window R", "PYTHIA speedup med (p25-p75)",
                      "ORCL speedup med"});
  for (uint32_t window : {16u, 64u, 256u, 1024u, 4096u}) {
    SimOptions sim = DefaultSim();
    sim.buffer_pages = 2048;
    SimEnvironment env(sim);
    PythiaSystem system(&env);
    WorkloadModel model = CachedModel(*db, workload, DefaultPredictor(),
                                      "dsb_t91_default");
    system.AddWorkload(workload, std::move(model));
    PrefetcherOptions prefetch;
    prefetch.readahead_window = window;
    const std::vector<QueryEval> evals = EvaluateTestQueries(
        &system, workload, {RunMode::kPythia, RunMode::kOracle}, prefetch);
    table.AddRow(
        {TablePrinter::Int(window),
         BoxCell(Collect(evals, RunMode::kPythia, true), 2) + "x",
         TablePrinter::Num(
             Summarize(Collect(evals, RunMode::kOracle, true)).median, 2) +
             "x"});
  }

  std::printf("=== Figure 12g: speedup vs readahead window R (dsb_t91) "
              "===\n");
  table.Print();
  std::printf("\nPaper shape: benefits grow with R but the growth drops off "
              "— performance does not degrade much for small R because the "
              "buffer manager retains unpinned prefetched blocks anyway.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
