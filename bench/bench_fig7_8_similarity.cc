// Figures 7 & 8: impact of the similarity between a test query and the
// training workload. For each test query, the average Jaccard similarity of
// its block-access set to every training query's set is computed; test
// queries are bucketized into bottom-25% / middle / top-25% similarity, and
// F1 (Fig 7) and speedup (Fig 8) are reported per bucket.
#include "bench/common.h"
#include "core/trace_processor.h"

namespace pythia::bench {
namespace {

void Run() {
  auto dsb = Dsb();
  auto imdb = Imdb();
  TablePrinter f1_table({"workload", "similarity bucket", "PYTHIA F1 med",
                         "mean similarity"});
  TablePrinter sp_table({"workload", "similarity bucket", "PYTHIA speedup",
                         "ORCL speedup"});

  for (TemplateId id : {TemplateId::kDsb18, TemplateId::kDsb19,
                        TemplateId::kDsb91, TemplateId::kImdb1a}) {
    const bool is_dsb = IsDsbTemplate(id);
    const Database& db = is_dsb ? *dsb : *imdb;
    Workload workload =
        MakeWorkload(db, id, is_dsb ? kNumQueries : kImdbNumQueries);
    const PredictorOptions options =
        is_dsb ? DefaultPredictor() : ImdbPredictor(db);
    WorkloadModel model = CachedModel(
        db, workload, options, std::string(TemplateName(id)) + "_default");

    // Average Jaccard similarity of each test query to the whole training
    // workload, over non-sequential page sets.
    std::vector<std::unordered_set<PageId>> train_sets;
    for (size_t qi : workload.train_indices) {
      ObjectPageSets sets = ProcessTrace(workload.queries[qi].trace);
      std::unordered_set<PageId> flat;
      for (const PageId& p : FlattenPageSets(sets)) flat.insert(p);
      train_sets.push_back(std::move(flat));
    }
    std::vector<double> similarity;
    for (size_t ti : workload.test_indices) {
      ObjectPageSets sets = ProcessTrace(workload.queries[ti].trace);
      std::unordered_set<PageId> flat;
      for (const PageId& p : FlattenPageSets(sets)) flat.insert(p);
      double total = 0.0;
      for (const auto& train : train_sets) {
        total += JaccardSimilarity(flat, train);
      }
      similarity.push_back(total / train_sets.size());
    }
    const std::vector<int> buckets = QuartileBuckets(similarity);

    SimEnvironment env(DefaultSim());
    PythiaSystem system(&env);
    system.AddWorkload(workload, std::move(model));
    const std::vector<QueryEval> evals = EvaluateTestQueries(
        &system, workload, {RunMode::kPythia, RunMode::kOracle});

    for (int bucket = 0; bucket < 3; ++bucket) {
      std::vector<double> f1, sp, orcl, sims;
      for (size_t i = 0; i < evals.size(); ++i) {
        if (buckets[i] != bucket) continue;
        f1.push_back(evals[i].F1(RunMode::kPythia));
        sp.push_back(evals[i].Speedup(RunMode::kPythia));
        orcl.push_back(evals[i].Speedup(RunMode::kOracle));
        sims.push_back(similarity[i]);
      }
      if (f1.empty()) continue;
      f1_table.AddRow({TemplateName(id), BucketName(bucket),
                       TablePrinter::Num(Summarize(f1).median, 3),
                       TablePrinter::Num(Summarize(sims).mean, 3)});
      sp_table.AddRow({TemplateName(id), BucketName(bucket),
                       TablePrinter::Num(Summarize(sp).median, 2) + "x",
                       TablePrinter::Num(Summarize(orcl).median, 2) + "x"});
    }
  }

  std::printf("=== Figure 7: F1 by test-query similarity to the training "
              "workload ===\n");
  f1_table.Print();
  std::printf("\n=== Figure 8: speedup by test-query similarity ===\n");
  sp_table.Print();
  std::printf("\nPaper shape: accuracy and speedup improve monotonically "
              "with similarity to the training workload.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
