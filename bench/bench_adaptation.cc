// Drift-recovery chaos harness: the query mix shifts mid-run away from the
// trained model's distribution, with and without the online adaptation loop
// (core/adaptation.h).
//
// Scenario: one DSB t91 workload is split by page-region concentration into
// region A (low page numbers) and region B (high). The model trains on
// region A only; the stream serves A queries (phase 1), then shifts to B
// queries it has never seen (phase 2). Post-shift the stale model's
// prefetches stop being useful, the watchdog demotes it, and:
//  - adaptation OFF: the system is stuck on the degraded rungs for the rest
//    of the run — speedup over DFLT collapses toward 1x and stays there;
//  - adaptation ON: captured post-shift traces retrain a candidate off the
//    hot path, shadow validation gates it, a hot swap installs it, and the
//    speedup recovers.
//
// Self-checking, exit 1 on violation:
//  - the ON arm performs at least one retrain and one hot swap, and its
//    trailing post-shift speedup recovers to >= 80% of the pre-shift level;
//  - the OFF arm stays degraded (trailing post-shift speedup below the same
//    recovery bar);
//  - determinism: the ON arm reruns from identical seeds and the full JSON
//    payload — every speedup sample, every adaptation event and its virtual
//    lane timestamp — must be byte-identical.
//
// Results land in BENCH_adaptation.json. `--smoke` shrinks the workload for
// the CI adaptation-smoke arm: same checks, seconds not minutes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/adaptation.h"
#include "core/system.h"
#include "util/table_printer.h"

#include "bench/common.h"
#include "bench/json_writer.h"

namespace pythia {
namespace {

struct DriftConfig {
  int scale_factor = 40;
  size_t num_queries = 120;   // split into region A / region B halves
  size_t phase1 = 20;         // pre-shift stream length (region A)
  size_t phase2 = 90;         // post-shift stream length (region B)
  // Trailing-mean window for recovery tracking. Wide enough to smooth
  // per-query variance (individual region-B queries differ 2-3x in how
  // prefetchable they are) without hiding a sustained regression.
  size_t trailing = 16;
  double recovery_fraction = 0.8;
  int train_epochs = 12;      // offline model (region A only)
};

AdaptationOptions DriftAdaptation() {
  AdaptationOptions opts;
  // Wide enough that by the second retrain the window spans every distinct
  // drifted query the stream cycles — the candidate memorizes the new
  // region rather than extrapolating to it.
  opts.window_capacity = 64;
  opts.retrain_after = 12;
  opts.holdout_fraction = 0.25;
  opts.min_holdout = 4;
  opts.trigger_window = 8;
  opts.trigger_useful_ratio = 0.35;  // only retrain when the stream is sick
  // Match the offline recipe's strength: the candidate must learn a region
  // it has never seen from a window's worth of samples.
  opts.train.epochs = 20;
  opts.train.lr = 2e-3f;
  // A candidate that grew its vocabulary over-fires on the new region;
  // calibration trades a little recall for the precision the watchdog's
  // useful-ratio gate actually judges (see IncrementalTrainOptions).
  opts.train.calibration_min_precision = 0.40f;
  opts.train_cost_per_sample_us = 20;
  opts.probation_sessions = 8;
  opts.cooldown_captures = 8;
  return opts;
}

// Mean non-sequential page number of a query — the "region" its predicate
// concentrates on. The A/B split along this axis makes phase 2 touch pages
// the phase-1 model has mostly never emitted.
double RegionCenter(const WorkloadQuery& q) {
  double total = 0.0;
  size_t n = 0;
  for (const PageAccess& a : q.trace.accesses) {
    if (a.sequential) continue;
    total += static_cast<double>(a.page.page_no);
    ++n;
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

double TrailingMean(const std::vector<double>& values, size_t window) {
  if (values.empty()) return 0.0;
  const size_t n = std::min(window, values.size());
  double total = 0.0;
  for (size_t i = values.size() - n; i < values.size(); ++i) total += values[i];
  return total / static_cast<double>(n);
}

struct ArmOutcome {
  std::vector<double> pre_speedups;   // phase 1, per streamed query
  std::vector<double> post_speedups;  // phase 2, per streamed query
  double pre_shift = 0.0;             // trailing mean at end of phase 1
  double post_final = 0.0;            // trailing mean at end of phase 2
  // First phase-2 position (1-based) where the trailing mean reached the
  // recovery bar; -1 = never recovered.
  int64_t recovered_after = -1;
  AdaptationStats stats;
  std::vector<AdaptationEvent> events;
  uint64_t final_revision = 0;
  uint64_t watchdog_demotions = 0;
};

// Streams phase 1 (region A) then phase 2 (region B) through a fresh
// system. Per streamed query the speedup is DFLT cold / PYTHIA cold — both
// replayed through the same system so the PYTHIA run feeds the watchdog and
// (when on) the adaptation manager.
ArmOutcome RunArm(const Workload& wl,
                  const std::vector<size_t>& a_eval,
                  const std::vector<size_t>& b_stream, WorkloadModel&& model,
                  const DriftConfig& cfg, bool adaptation_on) {
  SimEnvironment env(bench::DefaultSim());
  PythiaSystem system(&env);
  system.AddWorkload(wl, std::move(model));
  // Region-B plans drift far from the match profiles built on region A;
  // the threshold must admit them or nothing downstream ever observes the
  // drifted stream.
  system.set_match_threshold(0.2);
  // The drift signal in this scenario is the watchdog's useful-ratio gate:
  // region-B prefetches of the region-A model are mostly wasted, so the
  // watchdog demotes and the adaptation trigger sees the sick stream. 0.20
  // keeps a clear margin on both sides — the stale model sits well below it
  // (~0.15) and a calibrated candidate well above (~0.30).
  WatchdogOptions wopts;
  wopts.min_useful_ratio = 0.20;
  system.set_watchdog_options(wopts);
  AdaptationManager* manager = nullptr;
  if (adaptation_on) manager = &system.EnableAdaptation(DriftAdaptation());

  PrefetcherOptions prefetch;
  const double bar_fraction = cfg.recovery_fraction;

  ArmOutcome out;
  auto stream_one = [&](size_t qi, std::vector<double>* speedups) {
    const WorkloadQuery& q = wl.queries[qi];
    const QueryRunMetrics dflt =
        system.RunQuery(q, RunMode::kDefault, prefetch);
    bench::CheckRun(dflt, RunMode::kDefault, qi);
    const QueryRunMetrics pyth = system.RunQuery(q, RunMode::kPythia, prefetch);
    bench::CheckRun(pyth, RunMode::kPythia, qi);
    speedups->push_back(SafeDiv(static_cast<double>(dflt.elapsed_us),
                                static_cast<double>(pyth.elapsed_us)));
  };

  for (size_t i = 0; i < cfg.phase1; ++i) {
    stream_one(a_eval[i % a_eval.size()], &out.pre_speedups);
  }
  out.pre_shift = TrailingMean(out.pre_speedups, cfg.trailing);
  const double bar = bar_fraction * out.pre_shift;

  for (size_t i = 0; i < cfg.phase2; ++i) {
    stream_one(b_stream[i % b_stream.size()], &out.post_speedups);
  }
  out.post_final = TrailingMean(out.post_speedups, cfg.trailing);
  // Recovered = the trailing mean crossed the bar and STAYED there through
  // the end of the run. A transient crossing before the watchdog notices
  // the drift (the stale model limps through its first few region-B
  // queries) does not count.
  for (size_t i = cfg.trailing; i <= out.post_speedups.size(); ++i) {
    const std::vector<double> prefix(out.post_speedups.begin(),
                                     out.post_speedups.begin() + i);
    if (TrailingMean(prefix, cfg.trailing) >= bar) {
      if (out.recovered_after < 0) out.recovered_after = static_cast<int64_t>(i);
    } else {
      out.recovered_after = -1;
    }
  }
  if (manager != nullptr) {
    out.stats = manager->stats();
    out.events = manager->events();
  }
  out.final_revision = system.model(0).revision();
  out.watchdog_demotions = system.watchdog(0).stats().demotions;
  return out;
}

void WriteArmJson(bench::JsonWriter& json, const char* name,
                  const ArmOutcome& arm) {
  json.Key(name).BeginObject();
  json.Field("pre_shift_speedup", arm.pre_shift);
  json.Field("post_final_speedup", arm.post_final);
  json.Key("recovered_after_queries").Int(arm.recovered_after);
  json.Field("final_revision", arm.final_revision);
  json.Field("watchdog_demotions", arm.watchdog_demotions);
  json.Key("adaptation").BeginObject();
  json.Field("captured", arm.stats.captured);
  json.Field("retrains_started", arm.stats.retrains_started);
  json.Field("retrains_completed", arm.stats.retrains_completed);
  json.Field("validations_passed", arm.stats.validations_passed);
  json.Field("validations_failed", arm.stats.validations_failed);
  json.Field("swaps", arm.stats.swaps);
  json.Field("commits", arm.stats.commits);
  json.Field("rollbacks", arm.stats.rollbacks);
  json.EndObject();
  json.Key("events").BeginArray();
  for (const AdaptationEvent& ev : arm.events) {
    json.BeginObject();
    json.Field("kind", AdaptationEventName(ev.kind));
    json.Field("lane_us", static_cast<uint64_t>(ev.lane_us));
    json.Field("revision", ev.revision);
    json.EndObject();
  }
  json.EndArray();
  json.Key("pre_speedups").BeginArray();
  for (double s : arm.pre_speedups) json.Double(s);
  json.EndArray();
  json.Key("post_speedups").BeginArray();
  for (double s : arm.post_speedups) json.Double(s);
  json.EndArray();
  json.EndObject();
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) {
  using namespace pythia;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  DriftConfig cfg;
  if (smoke) {
    cfg.scale_factor = 15;
    cfg.num_queries = 60;
    cfg.phase1 = 14;
    cfg.phase2 = 60;
    cfg.trailing = 6;
    cfg.train_epochs = 8;
  }

  std::unique_ptr<Database> db = bench::Dsb(cfg.scale_factor);
  Workload wl = bench::MakeWorkload(*db, TemplateId::kDsb91,
                                    static_cast<int>(cfg.num_queries));

  // Region split: sort by the page region each query's non-sequential
  // accesses concentrate on; low half = region A, high half = region B.
  std::vector<size_t> order(wl.queries.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return RegionCenter(wl.queries[a]) < RegionCenter(wl.queries[b]);
  });
  const size_t half = order.size() / 2;
  std::vector<size_t> region_a(order.begin(),
                               order.begin() + static_cast<ptrdiff_t>(half));
  std::vector<size_t> region_b(order.begin() + static_cast<ptrdiff_t>(half),
                               order.end());

  // The model trains on most of region A; the rest of A is the pre-shift
  // evaluation stream (unseen but in-distribution).
  const size_t a_eval_count = std::max<size_t>(6, region_a.size() / 5);
  std::vector<size_t> a_train(region_a.begin(),
                              region_a.end() - static_cast<ptrdiff_t>(a_eval_count));
  std::vector<size_t> a_eval(region_a.end() - static_cast<ptrdiff_t>(a_eval_count),
                             region_a.end());
  wl.train_indices = a_train;
  wl.test_indices = a_eval;

  PredictorOptions popts = bench::DefaultPredictor();
  popts.epochs = cfg.train_epochs;
  const std::string key = std::string("adaptation_a_sf") +
                          std::to_string(cfg.scale_factor) + "_q" +
                          std::to_string(cfg.num_queries) + "_e" +
                          std::to_string(cfg.train_epochs);
  WorkloadModel model = bench::CachedModel(*db, wl, popts, key);

  std::fprintf(stderr,
               "[drift] %zu queries: region A %zu (train %zu / eval %zu), "
               "region B %zu\n",
               wl.queries.size(), region_a.size(), a_train.size(),
               a_eval.size(), region_b.size());

  const ArmOutcome off = RunArm(wl, a_eval, region_b, model.Clone(), cfg,
                                /*adaptation_on=*/false);
  const ArmOutcome on = RunArm(wl, a_eval, region_b, model.Clone(), cfg,
                               /*adaptation_on=*/true);

  std::fprintf(stderr,
               "[on-arm] captured=%llu retrains=%llu/%llu passed=%llu "
               "failed=%llu swaps=%llu commits=%llu rollbacks=%llu "
               "wd_demotions=%llu\n",
               static_cast<unsigned long long>(on.stats.captured),
               static_cast<unsigned long long>(on.stats.retrains_completed),
               static_cast<unsigned long long>(on.stats.retrains_started),
               static_cast<unsigned long long>(on.stats.validations_passed),
               static_cast<unsigned long long>(on.stats.validations_failed),
               static_cast<unsigned long long>(on.stats.swaps),
               static_cast<unsigned long long>(on.stats.commits),
               static_cast<unsigned long long>(on.stats.rollbacks),
               static_cast<unsigned long long>(on.watchdog_demotions));

  // --- Self checks ---------------------------------------------------------
  const double on_bar = cfg.recovery_fraction * on.pre_shift;
  const double off_bar = cfg.recovery_fraction * off.pre_shift;
  if (on.pre_shift <= 1.05) {
    std::fprintf(stderr,
                 "FATAL: pre-shift speedup %.3f too small to measure drift\n",
                 on.pre_shift);
    return 1;
  }
  if (on.stats.retrains_completed == 0 || on.stats.swaps == 0) {
    std::fprintf(stderr,
                 "FATAL: adaptation never retrained/swapped (retrains=%llu "
                 "swaps=%llu)\n",
                 static_cast<unsigned long long>(on.stats.retrains_completed),
                 static_cast<unsigned long long>(on.stats.swaps));
    return 1;
  }
  if (on.post_final < on_bar || on.recovered_after < 0) {
    std::fprintf(stderr,
                 "FATAL: adaptation-on did not recover: trailing %.3f < bar "
                 "%.3f (pre-shift %.3f)\n",
                 on.post_final, on_bar, on.pre_shift);
    return 1;
  }
  if (off.post_final >= off_bar) {
    std::fprintf(stderr,
                 "FATAL: adaptation-off recovered on its own: trailing %.3f "
                 ">= bar %.3f — the drift scenario is too easy\n",
                 off.post_final, off_bar);
    return 1;
  }

  auto build_json = [&](const ArmOutcome& off_arm, const ArmOutcome& on_arm) {
    bench::JsonWriter json;
    json.BeginObject();
    json.Field("bench", "adaptation");
    json.Field("smoke", smoke);
    json.Field("scale_factor", static_cast<uint64_t>(cfg.scale_factor));
    json.Field("num_queries", static_cast<uint64_t>(cfg.num_queries));
    json.Field("phase1", static_cast<uint64_t>(cfg.phase1));
    json.Field("phase2", static_cast<uint64_t>(cfg.phase2));
    json.Field("trailing_window", static_cast<uint64_t>(cfg.trailing));
    json.Field("recovery_fraction", cfg.recovery_fraction);
    WriteArmJson(json, "adaptation_off", off_arm);
    WriteArmJson(json, "adaptation_on", on_arm);
    json.EndObject();
    return json;
  };
  const bench::JsonWriter json = build_json(off, on);

  // Determinism: the ON arm — background training lane, shadow validation,
  // hot swap timing and all — reruns byte-identically from the same seeds.
  const ArmOutcome on2 = RunArm(wl, a_eval, region_b, model.Clone(), cfg,
                                /*adaptation_on=*/true);
  if (build_json(off, on2).str() != json.str()) {
    std::fprintf(stderr, "FATAL: same-seed rerun is not byte-identical\n");
    return 1;
  }

  TablePrinter table({"arm", "pre-shift", "post trailing", "recovered after",
                      "retrains", "swaps", "rollbacks", "wd demotions"});
  auto row = [&](const char* name, const ArmOutcome& arm) {
    table.AddRow({name, TablePrinter::Num(arm.pre_shift, 3),
                  TablePrinter::Num(arm.post_final, 3),
                  arm.recovered_after < 0
                      ? std::string("never")
                      : std::to_string(arm.recovered_after) + " queries",
                  std::to_string(arm.stats.retrains_completed),
                  std::to_string(arm.stats.swaps),
                  std::to_string(arm.stats.rollbacks),
                  std::to_string(arm.watchdog_demotions)});
  };
  std::printf("=== Drift recovery: t91 region shift after %zu queries, "
              "adaptation on vs off ===\n",
              cfg.phase1);
  row("adaptation off", off);
  row("adaptation on", on);
  table.Print();
  std::printf("\nall checks passed: adaptation-on recovered to %.3fx "
              "(>= %.0f%% of pre-shift %.3fx) after %lld post-shift queries; "
              "adaptation-off stayed at %.3fx; same-seed rerun "
              "byte-identical\n",
              on.post_final, cfg.recovery_fraction * 100.0, on.pre_shift,
              static_cast<long long>(on.recovered_after), off.post_final);

  if (!json.WriteToFile("BENCH_adaptation.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_adaptation.json\n");
    return 1;
  }
  std::printf("wrote BENCH_adaptation.json\n");
  return 0;
}
