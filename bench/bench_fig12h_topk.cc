// Figure 12h: predicting only the top-k most frequently accessed pages.
// Smaller models that predict only popular pages yield proportionally less
// benefit — popular pages tend to stay in the buffer pool anyway, so the
// bulk of Pythia's speedup comes from the infrequent non-sequential pages.
// (The paper sweeps 20k/40k/60k pages on a 100 GB database; scaled here to
// the simulated page counts.)
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb91);

  TablePrinter table({"predicted pages per object",
                      "PYTHIA speedup med (p25-p75)", "F1 med",
                      "recall med"});
  for (size_t top_k : {size_t{16}, size_t{64}, size_t{256}, size_t{0}}) {
    PredictorOptions options = DefaultPredictor();
    options.top_k_pages = top_k;
    const std::string key =
        top_k == 0 ? "dsb_t91_default"
                   : "dsb_t91_top" + std::to_string(top_k);
    SimEnvironment env(DefaultSim());
    PythiaSystem system(&env);
    WorkloadModel model = CachedModel(*db, workload, options, key);
    system.AddWorkload(workload, std::move(model));
    const std::vector<QueryEval> evals =
        EvaluateTestQueries(&system, workload, {RunMode::kPythia});
    std::vector<double> recalls;
    for (const QueryEval& e : evals) {
      recalls.push_back(e.metrics.at(RunMode::kPythia).accuracy.recall);
    }
    table.AddRow(
        {top_k == 0 ? "all pages" : TablePrinter::Int(
                                        static_cast<long long>(top_k)),
         BoxCell(Collect(evals, RunMode::kPythia, true), 2) + "x",
         TablePrinter::Num(
             Summarize(Collect(evals, RunMode::kPythia, false)).median, 3),
         TablePrinter::Num(Summarize(recalls).median, 3)});
  }

  std::printf("=== Figure 12h: speedup when predicting only the top-k "
              "frequent pages (dsb_t91) ===\n");
  table.Print();
  std::printf("\nPaper shape: restricting prediction to popular pages "
              "yields only a fraction of the full benefit — those pages "
              "often remain buffered without prefetching.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
