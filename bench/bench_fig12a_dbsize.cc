// Figure 12a: impact of database size. The same template-18 workload is
// trained and evaluated on databases generated at scale factors 25, 50 and
// 100; the number of pages to predict grows with SF while the training-set
// size stays fixed, so accuracy degrades slightly with scale.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  TablePrinter table({"scale factor", "db pages", "PYTHIA F1 med (p25-p75)"});
  for (int sf : {25, 50, 100}) {
    auto db = Dsb(sf);
    Workload workload = MakeWorkload(*db, TemplateId::kDsb18);
    WorkloadModel model =
        CachedModel(*db, workload, DefaultPredictor(),
                    "dsb_t18_sf" + std::to_string(sf));
    const std::vector<double> f1 = PythiaF1(&model, workload);
    table.AddRow({TablePrinter::Int(sf),
                  TablePrinter::Int(static_cast<long long>(db->TotalPages())),
                  BoxCell(f1)});
  }
  std::printf("=== Figure 12a: F1 vs database scale factor (dsb_t18) ===\n");
  table.Print();
  std::printf("\nPaper shape: accuracy slightly deteriorates as the scale "
              "factor (number of predictable blocks) grows with a fixed "
              "training-set size.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
