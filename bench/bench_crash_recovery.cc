// Crash-recovery sweep: kill the checkpoint path at every named crash
// window, recover from the residue, and prove the recovered system is
// consistent — never a torn artifact, never a stale memoized prediction,
// and byte-identical predictions to whichever committed state the crash
// semantics say must survive.
//
// Three arms:
//
//  1. Site sweep. For each of the five CrashPointRegistry sites
//     (storage/durable.h) the harness commits generation 1, mutates the
//     served model (threshold change -> new revision, new prediction
//     policy), arms the site and attempts generation 2. The armed
//     checkpoint must abort, and recovery against the residue must land on
//     exactly the state the decision tree (core/recovery.h) prescribes:
//       pre_tmp_write / mid_payload / pre_rename  -> generation-1 model,
//           manifest-matched, warm cache + demoted watchdog restored;
//       post_rename_pre_sidecar / mid_manifest    -> the newer published
//           weights at manifest revision + 1, cold cache, fresh watchdog.
//     Post-recovery predictions are digest-compared against the old/new
//     reference digests captured before the kill, and a post-recovery
//     checkpoint must continue the generation sequence monotonically.
//
//  2. Seeded chaos. ArmRandom(seed, p) over repeated checkpoints of an
//     unchanged model: wherever the kill lands, recovery must come back
//     warm at the committed revision with the identical prediction digest.
//
//  3. Cold vs warm restart. Recovery with no artifacts retrains from the
//     workload spec; recovery from a checkpoint loads the primary and the
//     warm cache. Warm must be measurably faster (it is a file load versus
//     a full training run).
//
// Self-checking: every violated expectation prints FATAL and exits 1.
// Arms 1 and 2 rerun from identical seeds and their JSON section must be
// byte-identical (wall-clock timings live outside the compared section).
// Results land in BENCH_crash_recovery.json; `--smoke` shrinks the scale
// for the CI crash-recovery-smoke arm.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/prediction_cache.h"
#include "core/recovery.h"
#include "core/system.h"
#include "storage/durable.h"
#include "util/crc32.h"
#include "util/metrics_registry.h"
#include "util/table_printer.h"

#include "bench/common.h"
#include "bench/json_writer.h"

namespace pythia {
namespace {

struct CrashConfig {
  int scale_factor = 40;
  size_t num_queries = 120;
  int train_epochs = 12;
  size_t chaos_seeds = 12;
  double chaos_prob = 0.3;
  size_t chaos_attempts = 3;  // checkpoint attempts per chaos seed
  size_t cache_entries = 4;   // warm-cache entries staged per run
};

// Digest of the model's predictions over the held-out queries: CRC over
// every predicted page (sorted per query) plus separators. Two models
// predict byte-identically iff their digests match.
uint32_t PredictionDigest(WorkloadModel& model, const Workload& wl) {
  uint32_t crc = 0;
  for (size_t ti : wl.test_indices) {
    std::vector<uint64_t> pages;
    for (const PageId& p : model.Predict(wl.queries[ti].tokens)) {
      pages.push_back(p.Pack());
    }
    std::sort(pages.begin(), pages.end());
    pages.push_back(~0ull);  // query separator
    crc = Crc32(pages.data(), pages.size() * sizeof(uint64_t), crc);
  }
  return crc;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = bench::CacheDir() + "/crash_recovery/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

// Registers the base model on a fresh system, seeds warm-cache entries from
// real test-query plans, and demotes the watchdog so restores are visible.
std::unique_ptr<PythiaSystem> StageSystem(const Workload& wl,
                                          WorkloadModel& base,
                                          size_t cache_entries) {
  auto sys = std::make_unique<PythiaSystem>(nullptr);
  sys->AddWorkload(wl, base.Clone());
  const uint64_t rev = sys->model(0).revision();
  for (size_t i = 0; i < cache_entries && i < wl.test_indices.size(); ++i) {
    const auto& tokens = wl.queries[wl.test_indices[i]].tokens;
    std::vector<PageId> pages;
    for (const PageId& p : sys->model(0).Predict(tokens)) pages.push_back(p);
    std::sort(pages.begin(), pages.end());
    sys->prediction_cache().Insert(
        {0, rev, PredictionCache::PlanKey(tokens)}, std::move(pages));
  }
  // Four useless windows demote the watchdog with its default options; a
  // warm recovery must bring the demotion back, a cold one must not.
  for (int i = 0; i < 4; ++i) sys->watchdog(0).Record(10, 0);
  return sys;
}

RecoverySpec SpecFor(const Workload& wl, const Database& db,
                     const PredictorOptions& popts,
                     const std::string& model_path) {
  RecoverySpec spec;
  spec.workload = &wl;
  spec.db = &db;
  spec.options = popts;
  spec.model_path = model_path;
  return spec;
}

#define FATAL(...)                       \
  do {                                   \
    std::fprintf(stderr, "FATAL: ");     \
    std::fprintf(stderr, __VA_ARGS__);   \
    std::fprintf(stderr, "\n");          \
    std::exit(1);                        \
  } while (0)

// ---------------------------------------------------------------------------
// Arm 1: deterministic kill-at-every-site sweep.

struct SweepOutcome {
  std::string site;
  bool aborted = false;
  uint64_t hits = 0;
  std::string source;
  bool manifest_match = false;
  uint64_t revision_delta = 0;  // recovered revision - staged revision
  std::string adopted;          // "old" (gen-1 model) or "new" (post-crash)
  uint64_t cache_restored = 0;
  uint64_t cache_rejected = 0;
  uint64_t tmp_removed = 0;
  uint64_t manifest_generation = 0;
  uint64_t next_generation = 0;  // after one post-recovery checkpoint
  bool watchdog_demoted = false;
};

struct SweepExpect {
  const char* adopted;
  uint64_t revision_delta;
  bool manifest_match;  // implies warm cache + restored (demoted) watchdog
  bool tmp_residue;     // the kill leaves a .tmp for recovery to sweep
};

SweepExpect ExpectFor(const std::string& site) {
  if (site == kCrashPreTmpWrite) return {"old", 0, true, false};
  if (site == kCrashMidPayload) return {"old", 0, true, true};
  if (site == kCrashPreRename) return {"old", 0, true, true};
  if (site == kCrashPostRenamePreSidecar) return {"new", 1, false, false};
  if (site == kCrashMidManifest) return {"new", 1, false, true};
  FATAL("unknown crash site %s", site.c_str());
}

SweepOutcome RunSweepSite(const std::string& site, const CrashConfig& cfg,
                          const Database& db, const Workload& wl,
                          const PredictorOptions& popts, WorkloadModel& base) {
  SweepOutcome out;
  out.site = site;
  const std::string dir = FreshDir("sweep_" + site);
  const std::string model_path = dir + "/wm.pywm";

  std::unique_ptr<PythiaSystem> sys = StageSystem(wl, base, cfg.cache_entries);
  const uint64_t rev0 = sys->model(0).revision();

  CrashPointRegistry& crash = CrashPointRegistry::Global();
  crash.Reset();
  CheckpointManager mgr(dir, CheckpointOptions());
  Status gen1 = mgr.Checkpoint(*sys, {model_path});
  if (!gen1.ok()) FATAL("[%s] baseline checkpoint: %s", site.c_str(),
                        gen1.ToString().c_str());
  const uint32_t old_digest = PredictionDigest(sys->model(0), wl);
  const FileIdentity old_identity = FileIdentityOf(model_path);

  // Mutate the served model — new revision, new prediction policy — and
  // kill the checkpoint that tries to commit it.
  sys->model(0).set_threshold(popts.threshold * 0.5f);
  const uint32_t new_digest = PredictionDigest(sys->model(0), wl);
  if (new_digest == old_digest) {
    FATAL("[%s] threshold change did not alter predictions; the old/new "
          "distinction would be vacuous — widen the config", site.c_str());
  }
  crash.Arm(site);
  Status gen2 = mgr.Checkpoint(*sys, {model_path});
  out.aborted = gen2.code() == StatusCode::kAborted && crash.crashed() &&
                crash.crash_site() == site;
  if (!out.aborted) FATAL("[%s] armed checkpoint did not die there: %s",
                          site.c_str(), gen2.ToString().c_str());
  out.hits = crash.hits(site);
  sys.reset();  // the process is dead; its memory is gone

  // Reboot and recover against the residue.
  crash.Reset();
  PythiaSystem restarted(nullptr);
  RecoveryManager rm(dir);
  Result<RecoveryReport> report =
      rm.Recover(&restarted, {SpecFor(wl, db, popts, model_path)});
  if (!report.ok()) FATAL("[%s] recovery failed: %s", site.c_str(),
                          report.status().ToString().c_str());
  const RecoveredWorkload& rw = report->workloads[0];
  out.source = RecoverySourceName(rw.source);
  out.manifest_match = rw.manifest_match;
  out.revision_delta = rw.revision - rev0;
  out.cache_restored = report->cache_restored;
  out.cache_rejected = report->cache_rejected;
  out.tmp_removed = report->tmp_files_removed;
  out.manifest_generation = report->manifest_generation;
  out.watchdog_demoted = restarted.watchdog(0).health() != ModelHealth::kHealthy;

  // "No inconsistent load": the recovered bytes must be exactly one of the
  // two committed states, and the predictions must match that state's
  // reference digest byte for byte.
  const bool kept_old = FileIdentityOf(model_path) == old_identity;
  out.adopted = kept_old ? "old" : "new";
  const uint32_t got = PredictionDigest(restarted.model(0), wl);
  const uint32_t want = kept_old ? old_digest : new_digest;
  if (got != want) {
    FATAL("[%s] post-recovery predictions diverge from the %s reference "
          "(digest %08x != %08x)", site.c_str(), out.adopted.c_str(), got,
          want);
  }
  if (rw.source == RecoverySource::kRetrained) {
    FATAL("[%s] recovery retrained despite committed artifacts on disk",
          site.c_str());
  }

  // Generations continue monotonically after recovery.
  CheckpointManager resumed(dir, CheckpointOptions());
  if (resumed.latest_generation() != report->manifest_generation) {
    FATAL("[%s] resumed manager sees generation %llu, recovery saw %llu",
          site.c_str(),
          static_cast<unsigned long long>(resumed.latest_generation()),
          static_cast<unsigned long long>(report->manifest_generation));
  }
  Status next = resumed.Checkpoint(restarted, {model_path});
  if (!next.ok()) FATAL("[%s] post-recovery checkpoint: %s", site.c_str(),
                        next.ToString().c_str());
  out.next_generation = resumed.latest_generation();

  // Check the decision-tree expectations for this site.
  const SweepExpect expect = ExpectFor(site);
  if (out.adopted != expect.adopted ||
      out.revision_delta != expect.revision_delta ||
      out.manifest_match != expect.manifest_match) {
    FATAL("[%s] wrong branch: adopted=%s delta=%llu match=%d, expected "
          "%s/%llu/%d", site.c_str(), out.adopted.c_str(),
          static_cast<unsigned long long>(out.revision_delta),
          out.manifest_match, expect.adopted,
          static_cast<unsigned long long>(expect.revision_delta),
          expect.manifest_match);
  }
  const uint64_t seeded =
      std::min(cfg.cache_entries, wl.test_indices.size());
  if (expect.manifest_match) {
    if (out.cache_restored != seeded || out.cache_rejected != 0)
      FATAL("[%s] warm recovery restored %llu/%llu cache entries",
            site.c_str(), static_cast<unsigned long long>(out.cache_restored),
            static_cast<unsigned long long>(seeded));
    if (!out.watchdog_demoted)
      FATAL("[%s] demoted watchdog came back healthy", site.c_str());
  } else {
    if (out.cache_restored != 0 || out.cache_rejected != seeded)
      FATAL("[%s] cold recovery leaked %llu stale cache entries",
            site.c_str(), static_cast<unsigned long long>(out.cache_restored));
    if (out.watchdog_demoted)
      FATAL("[%s] fresh-model recovery inherited a demotion", site.c_str());
  }
  if (expect.tmp_residue && out.tmp_removed == 0)
    FATAL("[%s] expected .tmp residue, sweep removed none", site.c_str());
  if (out.manifest_generation != 1 || out.next_generation != 2)
    FATAL("[%s] generations not monotonic: recovered %llu, next %llu",
          site.c_str(),
          static_cast<unsigned long long>(out.manifest_generation),
          static_cast<unsigned long long>(out.next_generation));
  return out;
}

// ---------------------------------------------------------------------------
// Arm 2: seeded random kills over repeated checkpoints of an unchanged
// model. Every committed generation describes byte-identical artifacts, so
// recovery must always come back warm at the staged revision.

struct ChaosOutcome {
  uint64_t seed = 0;
  std::string crash_site;  // empty when no attempt died
  uint64_t committed = 0;  // checkpoints that survived past generation 1
  uint64_t generation = 0;
  std::string source;
};

ChaosOutcome RunChaosSeed(uint64_t seed, const CrashConfig& cfg,
                          const Database& db, const Workload& wl,
                          const PredictorOptions& popts, WorkloadModel& base,
                          uint32_t base_digest) {
  ChaosOutcome out;
  out.seed = seed;
  const std::string dir = FreshDir("chaos_" + std::to_string(seed));
  const std::string model_path = dir + "/wm.pywm";
  std::unique_ptr<PythiaSystem> sys = StageSystem(wl, base, cfg.cache_entries);
  const uint64_t rev0 = sys->model(0).revision();

  CrashPointRegistry& crash = CrashPointRegistry::Global();
  crash.Reset();
  CheckpointManager mgr(dir, CheckpointOptions());
  Status gen1 = mgr.Checkpoint(*sys, {model_path});
  if (!gen1.ok()) FATAL("[chaos %llu] baseline checkpoint: %s",
                        static_cast<unsigned long long>(seed),
                        gen1.ToString().c_str());

  crash.ArmRandom(seed, cfg.chaos_prob);
  for (size_t attempt = 0; attempt < cfg.chaos_attempts; ++attempt) {
    Status s = mgr.Checkpoint(*sys, {model_path});
    if (s.ok()) {
      ++out.committed;
      continue;
    }
    if (s.code() != StatusCode::kAborted)
      FATAL("[chaos %llu] non-crash failure: %s",
            static_cast<unsigned long long>(seed), s.ToString().c_str());
    break;  // dead process stays dead
  }
  out.crash_site = crash.crash_site();
  sys.reset();

  crash.Reset();
  PythiaSystem restarted(nullptr);
  RecoveryManager rm(dir);
  Result<RecoveryReport> report =
      rm.Recover(&restarted, {SpecFor(wl, db, popts, model_path)});
  if (!report.ok()) FATAL("[chaos %llu] recovery failed: %s",
                          static_cast<unsigned long long>(seed),
                          report.status().ToString().c_str());
  const RecoveredWorkload& rw = report->workloads[0];
  out.source = RecoverySourceName(rw.source);
  out.generation = report->manifest_generation;
  // The model never changed, so every committed generation recorded the
  // same byte identity: whichever survived, recovery is warm and identical.
  if (!rw.manifest_match || rw.revision != rev0 ||
      rw.source == RecoverySource::kRetrained)
    FATAL("[chaos %llu] inconsistent recovery: source=%s match=%d",
          static_cast<unsigned long long>(seed), out.source.c_str(),
          rw.manifest_match);
  if (PredictionDigest(restarted.model(0), wl) != base_digest)
    FATAL("[chaos %llu] post-recovery predictions diverge",
          static_cast<unsigned long long>(seed));
  if (out.generation != 1 + out.committed)
    FATAL("[chaos %llu] generation %llu after %llu commits",
          static_cast<unsigned long long>(seed),
          static_cast<unsigned long long>(out.generation),
          static_cast<unsigned long long>(out.committed));
  return out;
}

// ---------------------------------------------------------------------------
// JSON (deterministic section only — compared byte-for-byte on rerun).

void EmitDeterministic(bench::JsonWriter& json,
                       const std::vector<SweepOutcome>& sweep,
                       const std::vector<ChaosOutcome>& chaos) {
  json.BeginObject();
  json.Key("sweep").BeginArray();
  for (const SweepOutcome& s : sweep) {
    json.BeginObject();
    json.Field("site", s.site);
    json.Field("aborted", s.aborted);
    json.Field("hits", s.hits);
    json.Field("source", s.source);
    json.Field("manifest_match", s.manifest_match);
    json.Field("revision_delta", s.revision_delta);
    json.Field("adopted", s.adopted);
    json.Field("cache_restored", s.cache_restored);
    json.Field("cache_rejected", s.cache_rejected);
    json.Field("tmp_removed", s.tmp_removed);
    json.Field("manifest_generation", s.manifest_generation);
    json.Field("next_generation", s.next_generation);
    json.Field("watchdog_demoted", s.watchdog_demoted);
    json.EndObject();
  }
  json.EndArray();
  json.Key("chaos").BeginArray();
  for (const ChaosOutcome& c : chaos) {
    json.BeginObject();
    json.Field("seed", c.seed);
    json.Field("crash_site", c.crash_site);
    json.Field("committed", c.committed);
    json.Field("generation", c.generation);
    json.Field("source", c.source);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string DeterministicJson(const std::vector<SweepOutcome>& sweep,
                              const std::vector<ChaosOutcome>& chaos) {
  bench::JsonWriter json;
  EmitDeterministic(json, sweep, chaos);
  return json.str();
}

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  CrashConfig cfg;
  if (smoke) {
    cfg.scale_factor = 15;
    cfg.num_queries = 60;
    cfg.train_epochs = 8;
    cfg.chaos_seeds = 6;
  }

  std::unique_ptr<Database> db = bench::Dsb(cfg.scale_factor);
  Workload wl = bench::MakeWorkload(*db, TemplateId::kDsb91,
                                    static_cast<int>(cfg.num_queries));
  PredictorOptions popts = bench::DefaultPredictor();
  popts.epochs = cfg.train_epochs;
  char key[96];
  std::snprintf(key, sizeof(key), "crash_t91_sf%d_q%zu_e%d",
                cfg.scale_factor, cfg.num_queries, cfg.train_epochs);
  WorkloadModel base = bench::CachedModel(*db, wl, popts, key);
  const uint32_t base_digest = PredictionDigest(base, wl);

  const RecoveryCounters counters_before = RecoveryCountersSnapshot();

  // Arm 1: the site sweep.
  std::vector<SweepOutcome> sweep;
  for (const char* site : AllCrashSites()) {
    sweep.push_back(RunSweepSite(site, cfg, *db, wl, popts, base));
    std::fprintf(stderr, "[sweep %s] adopted=%s match=%d gen %llu -> %llu\n",
                 site, sweep.back().adopted.c_str(),
                 sweep.back().manifest_match,
                 static_cast<unsigned long long>(
                     sweep.back().manifest_generation),
                 static_cast<unsigned long long>(
                     sweep.back().next_generation));
  }

  // Arm 2: seeded chaos.
  std::vector<ChaosOutcome> chaos;
  for (uint64_t seed = 0; seed < cfg.chaos_seeds; ++seed) {
    chaos.push_back(
        RunChaosSeed(seed, cfg, *db, wl, popts, base, base_digest));
  }

  // Arm 3: cold vs warm restart.
  const std::string cold_dir = FreshDir("cold");
  CrashPointRegistry::Global().Reset();
  PythiaSystem cold_sys(nullptr);
  RecoveryManager cold_rm(cold_dir);
  Result<RecoveryReport> cold = cold_rm.Recover(
      &cold_sys, {SpecFor(wl, *db, popts, cold_dir + "/wm.pywm")});
  if (!cold.ok()) FATAL("cold recovery failed: %s",
                        cold.status().ToString().c_str());
  if (cold->workloads[0].source != RecoverySource::kRetrained)
    FATAL("cold restart did not retrain");
  if (PredictionDigest(cold_sys.model(0), wl) != base_digest)
    FATAL("cold retrain diverged from the reference model");

  const std::string warm_dir = FreshDir("warm");
  const std::string warm_model = warm_dir + "/wm.pywm";
  {
    std::unique_ptr<PythiaSystem> staged =
        StageSystem(wl, base, cfg.cache_entries);
    CheckpointManager mgr(warm_dir, CheckpointOptions());
    Status s = mgr.Checkpoint(*staged, {warm_model});
    if (!s.ok()) FATAL("warm staging checkpoint: %s", s.ToString().c_str());
  }
  PythiaSystem warm_sys(nullptr);
  RecoveryManager warm_rm(warm_dir);
  Result<RecoveryReport> warm =
      warm_rm.Recover(&warm_sys, {SpecFor(wl, *db, popts, warm_model)});
  if (!warm.ok()) FATAL("warm recovery failed: %s",
                        warm.status().ToString().c_str());
  if (warm->workloads[0].source != RecoverySource::kPrimary ||
      !warm->workloads[0].manifest_match || warm->cache_restored == 0)
    FATAL("warm restart was not warm (source=%s, cache_restored=%llu)",
          RecoverySourceName(warm->workloads[0].source),
          static_cast<unsigned long long>(warm->cache_restored));
  if (PredictionDigest(warm_sys.model(0), wl) != base_digest)
    FATAL("warm restore diverged from the reference model");
  if (warm->wall_us >= cold->wall_us)
    FATAL("warm restart (%llu us) not faster than cold retrain (%llu us)",
          static_cast<unsigned long long>(warm->wall_us),
          static_cast<unsigned long long>(cold->wall_us));

  // Determinism: rerun arms 1 and 2 from identical seeds; the deterministic
  // JSON section must come back byte-identical.
  const std::string first = DeterministicJson(sweep, chaos);
  std::vector<SweepOutcome> sweep2;
  for (const char* site : AllCrashSites()) {
    sweep2.push_back(RunSweepSite(site, cfg, *db, wl, popts, base));
  }
  std::vector<ChaosOutcome> chaos2;
  for (uint64_t seed = 0; seed < cfg.chaos_seeds; ++seed) {
    chaos2.push_back(
        RunChaosSeed(seed, cfg, *db, wl, popts, base, base_digest));
  }
  if (DeterministicJson(sweep2, chaos2) != first)
    FATAL("sweep/chaos rerun is not byte-identical");
  CrashPointRegistry::Global().Reset();

  const RecoveryCounters counters_after = RecoveryCountersSnapshot();

  TablePrinter table({"site", "aborted", "adopted", "rev+", "warm cache",
                      "tmp swept", "gen"});
  for (const SweepOutcome& s : sweep) {
    table.AddRow({s.site, s.aborted ? "yes" : "no", s.adopted,
                  TablePrinter::Int(static_cast<long long>(s.revision_delta)),
                  TablePrinter::Int(static_cast<long long>(s.cache_restored)),
                  TablePrinter::Int(static_cast<long long>(s.tmp_removed)),
                  TablePrinter::Int(static_cast<long long>(s.next_generation))});
  }
  table.Print();
  uint64_t chaos_kills = 0;
  for (const ChaosOutcome& c : chaos) chaos_kills += c.crash_site.empty() ? 0 : 1;
  std::printf("chaos: %zu seeds, %llu killed, all recovered warm\n",
              chaos.size(), static_cast<unsigned long long>(chaos_kills));
  std::printf("restart: cold %.1f ms (retrain), warm %.1f ms (%.1fx faster)\n",
              cold->wall_us / 1000.0, warm->wall_us / 1000.0,
              static_cast<double>(cold->wall_us) /
                  static_cast<double>(warm->wall_us));

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "crash_recovery");
  json.Field("smoke", smoke);
  json.Key("config").BeginObject();
  json.Field("scale_factor", cfg.scale_factor);
  json.Field("num_queries", static_cast<uint64_t>(cfg.num_queries));
  json.Field("train_epochs", cfg.train_epochs);
  json.Field("chaos_seeds", static_cast<uint64_t>(cfg.chaos_seeds));
  json.Field("chaos_prob", cfg.chaos_prob);
  json.Field("cache_entries", static_cast<uint64_t>(cfg.cache_entries));
  json.EndObject();
  json.Key("deterministic");
  EmitDeterministic(json, sweep, chaos);
  json.Key("restart").BeginObject();
  json.Field("cold_wall_us", cold->wall_us);
  json.Field("warm_wall_us", warm->wall_us);
  json.Field("warm_speedup", static_cast<double>(cold->wall_us) /
                                 static_cast<double>(warm->wall_us));
  json.Field("warm_cache_restored", warm->cache_restored);
  json.EndObject();
  json.Key("counters").BeginObject();
  json.Field("checkpoints_written", counters_after.checkpoints_written -
                                        counters_before.checkpoints_written);
  json.Field("models_from_primary", counters_after.models_from_primary -
                                        counters_before.models_from_primary);
  json.Field("models_retrained", counters_after.models_retrained -
                                     counters_before.models_retrained);
  json.Field("warm_cache_restores", counters_after.warm_cache_restores -
                                        counters_before.warm_cache_restores);
  json.Field("tmp_files_removed", counters_after.tmp_files_removed -
                                      counters_before.tmp_files_removed);
  json.EndObject();
  json.EndObject();
  if (!json.WriteToFile("BENCH_crash_recovery.json"))
    FATAL("could not write BENCH_crash_recovery.json");
  std::printf("wrote BENCH_crash_recovery.json\n");
  return 0;
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) { return pythia::Run(argc, argv); }
