// Figure 13c: concurrent queries sampled from multiple templates. Queries
// from different templates have different access patterns and contend for
// the buffer instead of helping each other, so gains shrink with
// concurrency before leveling out.
#include "bench/common.h"
#include "bench/json_writer.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  std::map<TemplateId, Workload> workloads;
  SimEnvironment env(DefaultSim());
  PythiaSystem system(&env);
  const TemplateId ids[] = {TemplateId::kDsb18, TemplateId::kDsb19,
                            TemplateId::kDsb91};
  for (TemplateId id : ids) {
    workloads.emplace(id, MakeWorkload(*db, id));
    WorkloadModel model =
        CachedModel(*db, workloads.at(id), DefaultPredictor(),
                    std::string(TemplateName(id)) + "_default");
    system.AddWorkload(workloads.at(id), std::move(model));
  }

  TablePrinter table({"concurrent queries", "DFLT total (ms)",
                      "PYTHIA total (ms)", "speedup"});
  Pcg32 rng(31, 0x13c);
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "fig13c_concurrent_multi");
  json.Field("templates", "dsb_t18+dsb_t19+dsb_t91");
  json.Key("levels").BeginArray();
  for (size_t level : {3, 6, 9}) {
    std::vector<ConcurrentQuery> plain, fetched;
    for (size_t i = 0; i < level; ++i) {
      const Workload& w = workloads.at(ids[i % 3]);
      const WorkloadQuery& q =
          w.queries[w.test_indices[rng.UniformU32(
              static_cast<uint32_t>(w.test_indices.size()))]];
      ConcurrentQuery c;
      c.trace = &q.trace;
      plain.push_back(c);
      QueryRunMetrics m;
      c.prefetch_pages = system.PrefetchPlan(q, RunMode::kPythia, &m);
      fetched.push_back(std::move(c));
    }
    env.ColdRestart();
    const ConcurrentResult base = ReplayConcurrent(plain, &env);
    CheckConcurrent(base, "DFLT");
    env.ColdRestart();
    const ConcurrentResult pythia = ReplayConcurrent(fetched, &env);
    CheckConcurrent(pythia, "PYTHIA");
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(level)),
         TablePrinter::Num(base.total_query_us / 1000.0, 1),
         TablePrinter::Num(pythia.total_query_us / 1000.0, 1),
         TablePrinter::Num(static_cast<double>(base.total_query_us) /
                               pythia.total_query_us,
                           2) +
             "x"});
    json.BeginObject();
    json.Field("concurrency", static_cast<uint64_t>(level));
    json.Field("dflt_total_us", static_cast<uint64_t>(base.total_query_us));
    json.Field("pythia_total_us",
               static_cast<uint64_t>(pythia.total_query_us));
    json.Field("dflt_makespan_us", static_cast<uint64_t>(base.makespan_us));
    json.Field("pythia_makespan_us",
               static_cast<uint64_t>(pythia.makespan_us));
    json.Field("speedup", static_cast<double>(base.total_query_us) /
                              pythia.total_query_us);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::printf("=== Figure 13c: concurrent queries from multiple templates "
              "(t18+t19+t91, simultaneous arrival) ===\n");
  table.Print();
  std::printf("\nPaper shape: Pythia still helps, but mixed templates "
              "hinder each other in the buffer, so gains shrink with "
              "concurrency before valleying out.\n");
  if (json.WriteToFile("BENCH_fig13c.json")) {
    std::printf("wrote BENCH_fig13c.json\n");
  } else {
    std::fprintf(stderr, "warning: could not write BENCH_fig13c.json\n");
  }
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
