// Observability overhead + sample-trace benchmark.
//
// Measures what the tracing layer costs on the replay hot path by running
// the identical (seeded, virtual-time) replay workload with tracing disabled
// and enabled (interleaved reps) and comparing process-CPU time. The virtual
// results must be bit-identical between the arms (tracing observes, never
// perturbs), and two traced runs of the same seed must export byte-identical
// Chrome JSON (determinism). Writes:
//   BENCH_observability.json    overhead numbers + per-query timelines
//   trace_observability.json    a sample trace, loadable in chrome://tracing
//                               or https://ui.perfetto.dev
//
// `--smoke` shrinks the workload for CI: same checks, seconds not minutes.
#include <algorithm>
#include <ctime>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/replay.h"
#include "util/metrics_registry.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/trace.h"

#include "bench/json_writer.h"

namespace pythia {
namespace {

struct BenchQuery {
  QueryTrace trace;
  std::vector<PageId> prefetch;
};

// A deterministic synthetic workload: per query, sequential runs (cheap,
// OS-readahead-friendly) interleaved with random probes that the "model"
// predicts perfectly, so the prefetcher has real issue/consume traffic.
std::vector<BenchQuery> MakeWorkload(size_t num_queries,
                                     size_t accesses_per_query,
                                     uint64_t seed) {
  std::vector<BenchQuery> queries;
  Pcg32 rng(seed);
  for (size_t q = 0; q < num_queries; ++q) {
    BenchQuery bq;
    const ObjectId heap = 1 + static_cast<ObjectId>(q % 3);
    uint32_t seq_page = rng.UniformU32(1000);
    for (size_t a = 0; a < accesses_per_query; ++a) {
      PageAccess access;
      access.cpu_tuples_before = 20 + rng.UniformU32(30);
      if (a % 4 == 3) {
        // Random probe into a large object; predicted, hence prefetched.
        access.page = PageId{7, rng.UniformU32(200000)};
        access.sequential = false;
        bq.prefetch.push_back(access.page);
      } else {
        access.page = PageId{heap, seq_page++};
        access.sequential = true;
      }
      bq.trace.accesses.push_back(access);
    }
    queries.push_back(std::move(bq));
  }
  return queries;
}

// One full pass over the workload in a fresh environment; returns the summed
// virtual elapsed time (the determinism witness between arms).
SimTime ReplayAll(const std::vector<BenchQuery>& queries,
                  const SimOptions& sim, const PrefetcherOptions& popts,
                  bool per_query_track) {
  SimEnvironment env(sim);
  SimTime total_virtual = 0;
  for (const BenchQuery& q : queries) {
    if (per_query_track) Tracer::Global().StartQueryTrack();
    env.ColdRestart();
    const ReplayResult r = ReplayQuery(q.trace, q.prefetch, popts, &env);
    if (!r.status.ok()) {
      std::fprintf(stderr, "replay failed: %s\n", r.status.ToString().c_str());
      std::exit(1);
    }
    total_virtual += r.elapsed_us;
  }
  return total_virtual;
}

// Process-CPU seconds, not wall: the replay loop is single-threaded, so CPU
// time is the same quantity minus descheduling noise — at the tens-of-ms
// scale of one pass, that noise would otherwise swamp a few-percent signal.
double CpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

}  // namespace
}  // namespace pythia

int main(int argc, char** argv) {
  using namespace pythia;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t num_queries = smoke ? 20 : 60;
  const size_t accesses = smoke ? 5000 : 10000;
  const int reps = smoke ? 9 : 11;
  const uint64_t seed = 20260805;

  SimOptions sim;
  sim.buffer_pages = 1024;
  sim.os_cache_pages = 4096;
  PrefetcherOptions popts;
  popts.start_delay_us = 500;

  const std::vector<BenchQuery> queries =
      MakeWorkload(num_queries, accesses, seed);

  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  tracer.Clear();

  // Warm-up pass (page tables, allocator), not timed.
  const SimTime virtual_expected = ReplayAll(queries, sim, popts, false);

  // Both arms interleaved within each rep — an off run immediately followed
  // by an on run — so slow drift in machine speed (thermal, noisy
  // neighbours) hits both arms equally instead of biasing whichever arm ran
  // second. The reported overhead is the MEDIAN of the per-pair ratios: the
  // two runs of a pair share machine conditions, so their ratio is far more
  // stable than any absolute time, and the median discards the reps where a
  // scheduling hiccup landed inside exactly one arm.
  double best_off = 1e100;
  double best_on = 1e100;
  std::vector<double> pair_overhead_pct;
  size_t events_recorded = 0;
  for (int r = 0; r < reps; ++r) {
    tracer.Disable();
    double start = CpuSeconds();
    SimTime v = ReplayAll(queries, sim, popts, false);
    const double off = CpuSeconds() - start;
    best_off = std::min(best_off, off);
    if (v != virtual_expected) {
      std::fprintf(stderr, "FATAL: virtual time drifted across reps\n");
      return 1;
    }

    tracer.Enable();
    tracer.Clear();
    start = CpuSeconds();
    v = ReplayAll(queries, sim, popts, true);
    const double on = CpuSeconds() - start;
    best_on = std::min(best_on, on);
    pair_overhead_pct.push_back((on - off) / off * 100.0);
    events_recorded = tracer.size();
    if (v != virtual_expected) {
      std::fprintf(stderr,
                   "FATAL: tracing changed virtual results (%llu != %llu)\n",
                   static_cast<unsigned long long>(v),
                   static_cast<unsigned long long>(virtual_expected));
      return 1;
    }
  }
  std::sort(pair_overhead_pct.begin(), pair_overhead_pct.end());
  const double overhead_pct = pair_overhead_pct[pair_overhead_pct.size() / 2];
  const std::string trace_json = tracer.ToChromeJson();
  const std::vector<QueryTimeline> timelines = tracer.Timelines();

  // Determinism: a second traced pass must export byte-identical JSON.
  tracer.Clear();
  ReplayAll(queries, sim, popts, true);
  const bool deterministic = tracer.ToChromeJson() == trace_json;
  tracer.Disable();
  if (!deterministic) {
    std::fprintf(stderr, "FATAL: same-seed traces are not byte-identical\n");
    return 1;
  }

  TablePrinter table({"arm", "cpu_s", "events", "virtual_us"});
  table.AddRow({"tracing off", TablePrinter::Num(best_off, 3), "0",
                std::to_string(virtual_expected)});
  table.AddRow({"tracing on", TablePrinter::Num(best_on, 3),
                std::to_string(events_recorded),
                std::to_string(virtual_expected)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("overhead: %.2f%% (target < 5%%), deterministic: %s\n\n",
              overhead_pct, deterministic ? "yes" : "no");
  std::printf("per-query timelines:\n%s\n",
              Tracer::Global().TimelineSummary().c_str());

  if (!tracer.WriteChromeJson("trace_observability.json")) {
    std::fprintf(stderr, "warning: could not write trace_observability.json\n");
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "observability");
  json.Field("smoke", smoke);
  json.Field("num_queries", static_cast<uint64_t>(num_queries));
  json.Field("accesses_per_query", static_cast<uint64_t>(accesses));
  json.Field("reps", reps);
  json.Field("cpu_seconds_tracing_off", best_off);
  json.Field("cpu_seconds_tracing_on", best_on);
  json.Field("overhead_pct", overhead_pct);
  json.Field("events_recorded", static_cast<uint64_t>(events_recorded));
  json.Field("virtual_elapsed_us", static_cast<uint64_t>(virtual_expected));
  json.Field("deterministic", deterministic);
  json.Field("trace_file", "trace_observability.json");
  json.Key("timelines").BeginArray();
  for (const QueryTimeline& t : timelines) {
    json.BeginObject();
    json.Field("query", static_cast<uint64_t>(t.query));
    json.Field("begin_us", static_cast<uint64_t>(t.begin_us));
    json.Field("end_us", static_cast<uint64_t>(t.end_us));
    json.Field("demand_misses", t.demand_misses);
    json.Field("prefetch_issued", t.prefetch_issued);
    json.Field("prefetch_consumed", t.prefetch_consumed);
    json.Field("prefetch_dropped", t.prefetch_dropped);
    json.Field("prefetch_timed_out", t.prefetch_timed_out);
    json.Field("prefetch_wait_us", static_cast<uint64_t>(t.prefetch_wait_us));
    json.Field("prefetch_io_us", static_cast<uint64_t>(t.prefetch_io_us));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!json.WriteToFile("BENCH_observability.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_observability.json\n");
    return 1;
  }
  std::printf("wrote BENCH_observability.json and trace_observability.json\n");
  return 0;
}
