// Figure 6: speedup over default Postgres execution for Pythia and the
// idealized baselines ORCL (exact access sequence) and NN (most similar
// training query), per workload, cold cache per run.
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto dsb = Dsb();
  auto imdb = Imdb();
  TablePrinter table({"workload", "PYTHIA", "ORCL", "NN"});

  for (TemplateId id : {TemplateId::kDsb18, TemplateId::kDsb19,
                        TemplateId::kDsb91, TemplateId::kImdb1a}) {
    const bool is_dsb = IsDsbTemplate(id);
    const Database& db = is_dsb ? *dsb : *imdb;
    Workload workload =
        MakeWorkload(db, id, is_dsb ? kNumQueries : kImdbNumQueries);
    const PredictorOptions options =
        is_dsb ? DefaultPredictor() : ImdbPredictor(db);
    WorkloadModel model = CachedModel(
        db, workload, options, std::string(TemplateName(id)) + "_default");

    SimEnvironment env(DefaultSim());
    PythiaSystem system(&env);
    system.AddWorkload(workload, std::move(model));
    const std::vector<QueryEval> evals = EvaluateTestQueries(
        &system, workload,
        {RunMode::kPythia, RunMode::kOracle, RunMode::kNearestNeighbor});
    table.AddRow(
        {TemplateName(id),
         BoxCell(Collect(evals, RunMode::kPythia, true), 2) + "x",
         BoxCell(Collect(evals, RunMode::kOracle, true), 2) + "x",
         BoxCell(Collect(evals, RunMode::kNearestNeighbor, true), 2) + "x"});
  }

  std::printf("=== Figure 6: speedup over DFLT, Pythia vs ORCL vs NN ===\n");
  table.Print();
  std::printf("\nPaper shape: t91 achieves the largest speedups (highest "
              "non-sequential IO fraction, up to ~6x for ORCL); Pythia is "
              "comparable to the idealized baselines.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
