// Figure 13d: concurrent queries with different arrival overlap. Five
// queries from one template arrive with exponentially-distributed
// inter-arrival times chosen so consecutive queries overlap by an expected
// 25% to 100% (simultaneous) of the template's expected runtime.
#include "bench/common.h"
#include "bench/json_writer.h"

namespace pythia::bench {
namespace {

void Run() {
  auto db = Dsb();
  Workload workload = MakeWorkload(*db, TemplateId::kDsb91);
  SimEnvironment env(DefaultSim());
  PythiaSystem system(&env);
  WorkloadModel model = CachedModel(*db, workload, DefaultPredictor(),
                                    "dsb_t91_default");
  system.AddWorkload(workload, std::move(model));

  // Expected single-query runtime, measured under DFLT (cold).
  std::vector<double> runtimes;
  for (size_t ti : workload.test_indices) {
    runtimes.push_back(static_cast<double>(
        system.RunQuery(workload.queries[ti], RunMode::kDefault,
                        PrefetcherOptions{})
            .elapsed_us));
  }
  const double expected_runtime = Summarize(runtimes).mean;

  TablePrinter table({"expected overlap", "DFLT total (ms)",
                      "PYTHIA total (ms)", "speedup"});
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "fig13d_arrival_overlap");
  json.Field("template", "dsb_t91");
  json.Field("num_queries", 5);
  json.Field("expected_runtime_us", expected_runtime);
  json.Key("overlaps").BeginArray();
  for (double overlap : {0.25, 0.50, 0.75, 1.00}) {
    Pcg32 rng(17, 0x13d);  // same arrivals for both modes
    // Expected inter-arrival = (1 - overlap) * runtime; overlap 1.0 means
    // simultaneous arrival.
    std::vector<SimTime> arrivals;
    SimTime t = 0;
    for (size_t i = 0; i < 5; ++i) {
      arrivals.push_back(t);
      const double mean_gap = (1.0 - overlap) * expected_runtime;
      const double gap = mean_gap <= 0.0
                             ? 0.0
                             : -mean_gap * std::log(1.0 -
                                                    rng.UniformDouble());
      t += static_cast<SimTime>(gap);
    }

    auto build = [&](bool prefetch) {
      std::vector<ConcurrentQuery> queries;
      for (size_t i = 0; i < 5; ++i) {
        const WorkloadQuery& q =
            workload.queries[workload.test_indices[i %
                                                   workload.test_indices
                                                       .size()]];
        ConcurrentQuery c;
        c.trace = &q.trace;
        c.arrival_us = arrivals[i];
        if (prefetch) {
          QueryRunMetrics m;
          c.prefetch_pages = system.PrefetchPlan(q, RunMode::kPythia, &m);
        }
        queries.push_back(std::move(c));
      }
      return queries;
    };
    env.ColdRestart();
    const ConcurrentResult base = ReplayConcurrent(build(false), &env);
    CheckConcurrent(base, "DFLT");
    env.ColdRestart();
    const ConcurrentResult pythia = ReplayConcurrent(build(true), &env);
    CheckConcurrent(pythia, "PYTHIA");
    table.AddRow(
        {TablePrinter::Num(overlap * 100, 0) + "%",
         TablePrinter::Num(base.total_query_us / 1000.0, 1),
         TablePrinter::Num(pythia.total_query_us / 1000.0, 1),
         TablePrinter::Num(static_cast<double>(base.total_query_us) /
                               pythia.total_query_us,
                           2) +
             "x"});
    json.BeginObject();
    json.Field("overlap", overlap);
    json.Field("dflt_total_us", static_cast<uint64_t>(base.total_query_us));
    json.Field("pythia_total_us",
               static_cast<uint64_t>(pythia.total_query_us));
    json.Field("dflt_makespan_us", static_cast<uint64_t>(base.makespan_us));
    json.Field("pythia_makespan_us",
               static_cast<uint64_t>(pythia.makespan_us));
    json.Field("speedup", static_cast<double>(base.total_query_us) /
                              pythia.total_query_us);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::printf("=== Figure 13d: concurrent queries with varying arrival "
              "overlap (5 queries, dsb_t91, Poisson arrivals) ===\n");
  table.Print();
  std::printf("\nPaper shape: Pythia provides benefits across all arrival "
              "overlaps, not only simultaneous arrivals.\n");
  if (json.WriteToFile("BENCH_fig13d.json")) {
    std::printf("wrote BENCH_fig13d.json\n");
  } else {
    std::fprintf(stderr, "warning: could not write BENCH_fig13d.json\n");
  }
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
