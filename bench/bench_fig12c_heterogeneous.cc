// Figure 12c: homogeneous vs heterogeneous workloads. A heterogeneous
// workload mixes queries from templates 18 and 19 (which share several
// relations) with the same total amount of training data; prediction
// accuracy drops relative to the homogeneous workloads.
#include <numeric>

#include "bench/common.h"

namespace pythia::bench {
namespace {

// Merges the first half of each workload's queries into one mixed workload
// with a fresh deterministic train/test split.
Workload MergeHeterogeneous(Workload&& a, Workload&& b) {
  Workload merged;
  merged.template_id = a.template_id;
  const size_t half_a = a.queries.size() / 2;
  const size_t half_b = b.queries.size() / 2;
  for (size_t i = 0; i < half_a; ++i) {
    merged.queries.push_back(std::move(a.queries[i]));
  }
  for (size_t i = 0; i < half_b; ++i) {
    merged.queries.push_back(std::move(b.queries[i]));
  }
  std::vector<size_t> order(merged.queries.size());
  std::iota(order.begin(), order.end(), 0u);
  Pcg32 rng(99, 0xc12c);
  rng.Shuffle(&order);
  const size_t num_test = std::max<size_t>(1, order.size() / 20);
  merged.test_indices.assign(order.begin(), order.begin() + num_test);
  merged.train_indices.assign(order.begin() + num_test, order.end());
  return merged;
}

void Run() {
  auto db = Dsb();
  TablePrinter table({"workload type", "PYTHIA F1 med (p25-p75)", "models"});

  // Homogeneous references (same data volume as the mixed workload).
  for (TemplateId id : {TemplateId::kDsb18, TemplateId::kDsb19}) {
    Workload workload = MakeWorkload(*db, id);
    WorkloadModel model = CachedModel(
        *db, workload, DefaultPredictor(),
        std::string(TemplateName(id)) + "_default");
    table.AddRow({std::string("homogeneous ") + TemplateName(id),
                  BoxCell(PythiaF1(&model, workload)),
                  TablePrinter::Int(
                      static_cast<long long>(model.report().num_models))});
  }

  Workload mixed = MergeHeterogeneous(MakeWorkload(*db, TemplateId::kDsb18),
                                      MakeWorkload(*db, TemplateId::kDsb19));
  WorkloadModel model = CachedModel(*db, mixed, DefaultPredictor(),
                                    "dsb_t18_t19_heterogeneous");
  table.AddRow({"heterogeneous t18+t19", BoxCell(PythiaF1(&model, mixed)),
                TablePrinter::Int(
                    static_cast<long long>(model.report().num_models))});

  std::printf("=== Figure 12c: homogeneous vs heterogeneous workload "
              "(same training volume) ===\n");
  table.Print();
  std::printf("\nPaper shape: prediction accuracy drops for models trained "
              "on heterogeneous workloads.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
