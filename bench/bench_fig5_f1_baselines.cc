// Figure 5: prediction accuracy (F1) of Pythia vs the idealized
// nearest-neighbor baseline, per workload. ORCL is omitted as in the paper
// (its F1 is 1 by definition).
#include "bench/common.h"

namespace pythia::bench {
namespace {

void Run() {
  auto dsb = Dsb();
  auto imdb = Imdb();
  TablePrinter table(
      {"workload", "PYTHIA F1 med (p25-p75)", "NN F1 med (p25-p75)"});

  for (TemplateId id : {TemplateId::kDsb18, TemplateId::kDsb19,
                        TemplateId::kDsb91, TemplateId::kImdb1a}) {
    const bool is_dsb = IsDsbTemplate(id);
    const Database& db = is_dsb ? *dsb : *imdb;
    Workload workload =
        MakeWorkload(db, id, is_dsb ? kNumQueries : kImdbNumQueries);
    const PredictorOptions options =
        is_dsb ? DefaultPredictor() : ImdbPredictor(db);
    WorkloadModel model = CachedModel(
        db, workload, options, std::string(TemplateName(id)) + "_default");

    SimEnvironment env(DefaultSim());
    PythiaSystem system(&env);
    system.AddWorkload(workload, std::move(model));
    std::vector<double> f1_pythia, f1_nn;
    for (size_t ti : workload.test_indices) {
      QueryRunMetrics pythia, nn;
      system.PrefetchPlan(workload.queries[ti], RunMode::kPythia, &pythia);
      system.PrefetchPlan(workload.queries[ti], RunMode::kNearestNeighbor,
                          &nn);
      f1_pythia.push_back(pythia.accuracy.f1);
      f1_nn.push_back(nn.accuracy.f1);
    }
    table.AddRow(
        {TemplateName(id), BoxCell(f1_pythia), BoxCell(f1_nn)});
  }

  std::printf("=== Figure 5: F1 score, Pythia vs idealized NN baseline ===\n");
  table.Print();
  std::printf("\nPaper shape: NN (which peeks at the test query's own "
              "accesses) bounds ML methods from above; Pythia tracks it "
              "without access to the answer.\n");
}

}  // namespace
}  // namespace pythia::bench

int main() { pythia::bench::Run(); }
